//! Fault-injection configuration for robustness studies.
//!
//! [`FaultConfig`] is *pure data*: it describes a disturbance regime
//! (gust bursts, upload failures, device dropout) without owning any
//! randomness or reading ambient state. The runtime injector that draws
//! from it (`uavdc-sim`'s `FaultPlan`) is constructed explicitly from a
//! config plus a seed, so two missions with the same `(config, seed)`
//! replay bit-identically and the workspace env-read lint stays clean —
//! fault intensity is always passed in by the caller, never pulled from
//! the environment.

use crate::units::Seconds;

/// A disturbance regime for the closed-loop simulator.
///
/// The three fault families compose with the existing `WindModel` /
/// `LinkModel` noise rather than replacing it:
///
/// * **Gust bursts** multiply travel energy *on top of* the per-leg wind
///   factor: with probability [`gust_onset`](Self::gust_onset) a burst
///   starts on a leg, lasts a drawn number of legs, and applies a drawn
///   severity factor to each of them.
/// * **Upload failures** hit each `(stop, device)` transfer: every
///   attempt fails independently with probability
///   [`upload_fail`](Self::upload_fail), each failure wastes
///   [`retry_backoff`](Self::retry_backoff) of the hover window, and
///   after [`max_retries`](Self::max_retries) retries the transfer is
///   abandoned for that stop.
/// * **Device dropout** removes a device for the whole mission (decided
///   once at launch with probability [`dropout`](Self::dropout) each).
///
/// [`FaultConfig::none`] (also `Default`) disables everything; an inert
/// config draws no randomness at all, so enabling faults never perturbs
/// the wind/link streams of an existing experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Probability that a gust burst starts on a leg flown in calm state
    /// (`0` disables gusts).
    pub gust_onset: f64,
    /// Inclusive range of burst durations, in legs (`lo >= 1`).
    pub gust_legs: (u32, u32),
    /// Inclusive range of the extra travel-energy multiplier applied to
    /// every leg of a burst (`1 <= lo <= hi`).
    pub gust_severity: (f64, f64),
    /// Per-attempt upload failure probability for each `(stop, device)`
    /// transfer (`0` disables upload faults).
    pub upload_fail: f64,
    /// Number of retries after a failed upload attempt before the
    /// transfer is abandoned at this stop.
    pub max_retries: u32,
    /// Hover time wasted by each failed attempt (sensing the failure and
    /// backing off) before the next attempt may start.
    pub retry_backoff: Seconds,
    /// Probability that a device has dropped out for the whole mission,
    /// decided once at launch (`0` disables dropout).
    pub dropout: f64,
}

impl FaultConfig {
    /// The inert regime: no gusts, no upload failures, no dropout.
    pub fn none() -> Self {
        FaultConfig {
            gust_onset: 0.0,
            gust_legs: (1, 1),
            gust_severity: (1.0, 1.0),
            upload_fail: 0.0,
            max_retries: 0,
            retry_backoff: Seconds::ZERO,
            dropout: 0.0,
        }
    }

    /// True when this config can never perturb a mission.
    pub fn is_none(&self) -> bool {
        self.gust_onset <= 0.0 && self.upload_fail <= 0.0 && self.dropout <= 0.0
    }

    /// The largest travel-energy multiplier a single leg can suffer
    /// under this regime — the factor a safe controller must budget for.
    pub fn worst_leg_severity(&self) -> f64 {
        if self.gust_onset > 0.0 {
            self.gust_severity.1
        } else {
            1.0
        }
    }

    /// Checks internal consistency; returns a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        let prob = |name: &str, p: f64| -> Result<(), String> {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(format!("{name} must be a probability in [0, 1], got {p}"));
            }
            Ok(())
        };
        prob("gust_onset", self.gust_onset)?;
        prob("upload_fail", self.upload_fail)?;
        prob("dropout", self.dropout)?;
        let (llo, lhi) = self.gust_legs;
        if llo < 1 || llo > lhi {
            return Err(format!(
                "gust_legs must satisfy 1 <= lo <= hi, got ({llo}, {lhi})"
            ));
        }
        let (slo, shi) = self.gust_severity;
        if !(slo.is_finite() && shi.is_finite() && 1.0 <= slo && slo <= shi) {
            return Err(format!(
                "gust_severity must satisfy 1 <= lo <= hi, got ({slo}, {shi})"
            ));
        }
        let backoff = self.retry_backoff.value();
        if !(backoff.is_finite() && backoff >= 0.0) {
            return Err(format!("retry_backoff must be >= 0, got {backoff}"));
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert_and_valid() {
        let c = FaultConfig::none();
        assert!(c.is_none());
        assert_eq!(c.validate(), Ok(()));
        assert_eq!(c.worst_leg_severity(), 1.0);
        assert_eq!(c, FaultConfig::default());
    }

    #[test]
    fn worst_severity_tracks_gusts() {
        let c = FaultConfig {
            gust_onset: 0.1,
            gust_severity: (1.2, 1.5),
            ..FaultConfig::none()
        };
        assert!(!c.is_none());
        assert_eq!(c.validate(), Ok(()));
        assert_eq!(c.worst_leg_severity(), 1.5);
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let bad_prob = FaultConfig {
            gust_onset: 1.5,
            ..FaultConfig::none()
        };
        assert!(bad_prob.validate().unwrap_err().contains("gust_onset"));
        let bad_legs = FaultConfig {
            gust_legs: (0, 3),
            ..FaultConfig::none()
        };
        assert!(bad_legs.validate().unwrap_err().contains("gust_legs"));
        let bad_sev = FaultConfig {
            gust_severity: (0.9, 1.2),
            ..FaultConfig::none()
        };
        assert!(bad_sev.validate().unwrap_err().contains("gust_severity"));
        let bad_backoff = FaultConfig {
            retry_backoff: Seconds(-1.0),
            ..FaultConfig::none()
        };
        assert!(bad_backoff
            .validate()
            .unwrap_err()
            .contains("retry_backoff"));
    }
}
