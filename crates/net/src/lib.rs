//! Scenario model for UAV data collection from IoT sensor networks.
//!
//! This crate describes *what is on the ground and in the air* — the
//! paper's system model (§III.A–B) — independently of how tours are
//! planned:
//!
//! * [`units`] — thin newtypes for joules, seconds, metres, megabytes and
//!   their rates, so planner and simulator APIs cannot mix dimensions.
//! * [`IotDevice`] — an aggregate sensor node: position plus stored data
//!   volume (its own sensing data and what neighbours forwarded to it).
//! * [`topology`] — election of aggregate nodes from a raw deployment and
//!   forwarding of non-aggregate data to the nearest aggregate in range,
//!   producing the aggregate network the UAV serves.
//! * [`RadioModel`] — sensor transmission range `R`, uplink bandwidth `B`,
//!   and the derived hovering coverage radius `R0 = sqrt(R² − H²)`.
//! * [`UavSpec`] — battery capacity, speed, hover/travel powers
//!   (the paper's `η_h`, `η_t`) and flight altitude `H`.
//! * [`Scenario`] — a complete, validated instance: region, depot,
//!   aggregate devices, radio, UAV.
//! * [`FaultConfig`] — a pure-data disturbance regime (gust bursts,
//!   upload failures, device dropout) consumed by the `uavdc-sim` fault
//!   injector; always constructor-injected, never read from the
//!   environment.
//! * [`generator`] — seeded scenario generators, including
//!   [`generator::paper_default`] reproducing §VII.A exactly
//!   (500 nodes uniform in 1 km², `D_v ~ U[100, 1000]` MB, `R0 = 50` m,
//!   `B = 150` MB/s, `E = 3·10⁵` J, 10 m/s, `η_t = 100` J/s,
//!   `η_h = 150` J/s).

//!
//! # Example
//!
//! ```
//! use uavdc_net::generator::{uniform, ScenarioParams};
//!
//! let scenario = uniform(&ScenarioParams::default().scaled(0.1), 7);
//! assert_eq!(scenario.num_devices(), 50);
//! assert_eq!(scenario.validate(), Ok(()));
//! assert!((scenario.coverage_radius().value() - 50.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod fault;
pub mod generator;
pub mod io;
mod radio;
mod scenario;
pub mod topology;
pub mod units;

pub use fault::FaultConfig;
pub use radio::RadioModel;
pub use scenario::{DeviceId, IotDevice, Scenario, UavSpec};
