//! Dimension-carrying newtypes for the quantities the planners juggle.
//!
//! The paper's formulas mix energies (J), powers (J/s), durations (s),
//! distances (m), speeds (m/s), data volumes (MB) and bandwidths (MB/s).
//! These wrappers make unit errors type errors at API boundaries while
//! staying zero-cost: each is a transparent `f64`.
//!
//! Only physically meaningful operations are implemented, e.g.
//! `Watts * Seconds = Joules`, `MegaBytes / MegaBytesPerSecond = Seconds`,
//! `Meters / MetersPerSecond = Seconds`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit {
    ($(#[$doc:meta])* $name:ident, $suffix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Raw numeric value.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// True when the value is finite (not NaN/inf).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Component-wise minimum.
            #[inline]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// Component-wise maximum.
            #[inline]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// Clamps negative values to zero.
            #[inline]
            pub fn clamp_non_negative(self) -> $name {
                $name(self.0.max(0.0))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $suffix)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3} {}", self.0, $suffix)
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, s: f64) -> $name {
                $name(self.0 * s)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, u: $name) -> $name {
                $name(self * u.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, s: f64) -> $name {
                $name(self.0 / s)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|u| u.0).sum())
            }
        }
    };
}

unit!(
    /// Energy in joules.
    Joules,
    "J"
);
unit!(
    /// Time in seconds.
    Seconds,
    "s"
);
unit!(
    /// Distance in metres.
    Meters,
    "m"
);
unit!(
    /// Data volume in megabytes.
    MegaBytes,
    "MB"
);
unit!(
    /// Power in joules per second (the paper's `η_h`, `η_t`).
    Watts,
    "J/s"
);
unit!(
    /// Speed in metres per second.
    MetersPerSecond,
    "m/s"
);
unit!(
    /// Uplink bandwidth in megabytes per second (the paper's `B`).
    MegaBytesPerSecond,
    "MB/s"
);
unit!(
    /// Energy per distance in joules per metre (travel energy density).
    JoulesPerMeter,
    "J/m"
);

// --- Cross-unit physics ---------------------------------------------------

impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, t: Seconds) -> Joules {
        Joules(self.0 * t.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, p: Watts) -> Joules {
        p * self
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    #[inline]
    fn div(self, p: Watts) -> Seconds {
        Seconds(self.0 / p.0)
    }
}

impl Div<MegaBytesPerSecond> for MegaBytes {
    type Output = Seconds;
    #[inline]
    fn div(self, b: MegaBytesPerSecond) -> Seconds {
        Seconds(self.0 / b.0)
    }
}

impl Mul<Seconds> for MegaBytesPerSecond {
    type Output = MegaBytes;
    #[inline]
    fn mul(self, t: Seconds) -> MegaBytes {
        MegaBytes(self.0 * t.0)
    }
}

impl Div<MetersPerSecond> for Meters {
    type Output = Seconds;
    #[inline]
    fn div(self, v: MetersPerSecond) -> Seconds {
        Seconds(self.0 / v.0)
    }
}

impl Mul<Seconds> for MetersPerSecond {
    type Output = Meters;
    #[inline]
    fn mul(self, t: Seconds) -> Meters {
        Meters(self.0 * t.0)
    }
}

impl Div<MetersPerSecond> for Watts {
    /// Travel power over speed is energy per metre.
    type Output = JoulesPerMeter;
    #[inline]
    fn div(self, v: MetersPerSecond) -> JoulesPerMeter {
        JoulesPerMeter(self.0 / v.0)
    }
}

impl Mul<Meters> for JoulesPerMeter {
    type Output = Joules;
    #[inline]
    fn mul(self, d: Meters) -> Joules {
        Joules(self.0 * d.0)
    }
}

impl Mul<JoulesPerMeter> for Meters {
    type Output = Joules;
    #[inline]
    fn mul(self, e: JoulesPerMeter) -> Joules {
        e * self
    }
}

/// Gigabyte pretty-printer for report tables (the paper reports GB).
pub fn megabytes_as_gb(v: MegaBytes) -> f64 {
    v.0 / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_within_one_unit() {
        let a = Joules(10.0);
        let b = Joules(4.0);
        assert_eq!((a + b).value(), 14.0);
        assert_eq!((a - b).value(), 6.0);
        assert_eq!((a * 2.0).value(), 20.0);
        assert_eq!((2.0 * a).value(), 20.0);
        assert_eq!((a / 2.0).value(), 5.0);
        assert_eq!(a / b, 2.5);
        assert_eq!((-b).value(), -4.0);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn power_times_time_is_energy() {
        let hover = Watts(150.0) * Seconds(6.0);
        assert_eq!(hover, Joules(900.0));
        assert_eq!(Seconds(6.0) * Watts(150.0), Joules(900.0));
        assert_eq!(Joules(900.0) / Watts(150.0), Seconds(6.0));
    }

    #[test]
    fn data_over_bandwidth_is_time() {
        // Paper: t(s) = D_v / B with B = 150 MB/s.
        let t = MegaBytes(1000.0) / MegaBytesPerSecond(150.0);
        assert!((t.value() - 6.666_666_666_666_667).abs() < 1e-12);
        assert_eq!(MegaBytesPerSecond(150.0) * Seconds(2.0), MegaBytes(300.0));
    }

    #[test]
    fn travel_energy_density() {
        // η_t = 100 J/s at 10 m/s → 10 J per metre.
        let per_m = Watts(100.0) / MetersPerSecond(10.0);
        assert_eq!(per_m, JoulesPerMeter(10.0));
        assert_eq!(per_m * Meters(30_000.0), Joules(300_000.0));
        assert_eq!(Meters(5.0) * per_m, Joules(50.0));
    }

    #[test]
    fn distance_over_speed_is_time() {
        assert_eq!(Meters(100.0) / MetersPerSecond(10.0), Seconds(10.0));
        assert_eq!(MetersPerSecond(10.0) * Seconds(3.0), Meters(30.0));
    }

    #[test]
    fn sums_and_clamps() {
        let total: Joules = [Joules(1.0), Joules(2.5)].into_iter().sum();
        assert_eq!(total, Joules(3.5));
        assert_eq!(
            (Joules(1.0) - Joules(5.0)).clamp_non_negative(),
            Joules::ZERO
        );
    }

    #[test]
    fn display_formats_with_suffix() {
        assert_eq!(format!("{}", Joules(1.5)), "1.500 J");
        assert_eq!(format!("{:?}", MegaBytes(2.0)), "2 MB");
        assert_eq!(megabytes_as_gb(MegaBytes(147_700.0)), 147.7);
    }
}
