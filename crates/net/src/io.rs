//! Plain-text scenario persistence.
//!
//! A small versioned line format (no external dependencies) so scenarios
//! can be archived, shared, and re-run bit-identically — `f64` values are
//! printed with Rust's shortest round-trip representation:
//!
//! ```text
//! uavdc-scenario v1
//! region <min_x> <min_y> <max_x> <max_y>
//! depot <x> <y>
//! radio <range_m> <bandwidth_mbps>
//! uav <capacity_j> <speed_mps> <hover_w> <travel_w> <altitude_m> <travel_j_per_m|->
//! device <x> <y> <data_mb>        (one line per device)
//! ```

use crate::radio::RadioModel;
use crate::scenario::{IotDevice, Scenario, UavSpec};
use crate::units::{
    Joules, JoulesPerMeter, MegaBytes, MegaBytesPerSecond, Meters, MetersPerSecond, Watts,
};
use uavdc_geom::{Aabb, Point2};

/// Errors from [`scenario_from_str`] / [`read_scenario`].
#[derive(Debug)]
pub enum ScenarioIoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The text is not a valid scenario file; the string names the line
    /// and problem.
    Parse(String),
    /// The parsed scenario failed [`Scenario::validate`].
    Invalid(String),
}

impl std::fmt::Display for ScenarioIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioIoError::Io(e) => write!(f, "io error: {e}"),
            ScenarioIoError::Parse(what) => write!(f, "parse error: {what}"),
            ScenarioIoError::Invalid(what) => write!(f, "invalid scenario: {what}"),
        }
    }
}

impl std::error::Error for ScenarioIoError {}

impl From<std::io::Error> for ScenarioIoError {
    fn from(e: std::io::Error) -> Self {
        ScenarioIoError::Io(e)
    }
}

/// Serialises a scenario to the v1 text format.
pub fn scenario_to_string(s: &Scenario) -> String {
    let mut out = String::with_capacity(64 + 32 * s.num_devices());
    out.push_str("uavdc-scenario v1\n");
    out.push_str(&format!(
        "region {} {} {} {}\n",
        s.region.min.x, s.region.min.y, s.region.max.x, s.region.max.y
    ));
    out.push_str(&format!("depot {} {}\n", s.depot.x, s.depot.y));
    out.push_str(&format!(
        "radio {} {}\n",
        s.radio.range.value(),
        s.radio.bandwidth.value()
    ));
    let override_str = match s.uav.travel_energy_override {
        Some(d) => format!("{}", d.value()),
        None => "-".to_string(),
    };
    out.push_str(&format!(
        "uav {} {} {} {} {} {}\n",
        s.uav.capacity.value(),
        s.uav.speed.value(),
        s.uav.hover_power.value(),
        s.uav.travel_power.value(),
        s.uav.altitude.value(),
        override_str,
    ));
    for d in &s.devices {
        out.push_str(&format!(
            "device {} {} {}\n",
            d.pos.x,
            d.pos.y,
            d.data.value()
        ));
    }
    out
}

/// Parses the v1 text format and validates the result.
pub fn scenario_from_str(text: &str) -> Result<Scenario, ScenarioIoError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let err = |n: usize, what: &str| ScenarioIoError::Parse(format!("line {}: {what}", n + 1));

    let (n0, header) = lines
        .next()
        .ok_or_else(|| ScenarioIoError::Parse("empty file".into()))?;
    if header.trim() != "uavdc-scenario v1" {
        return Err(err(n0, "expected header 'uavdc-scenario v1'"));
    }

    fn floats(line: &str, tag: &str, want: usize) -> Option<Vec<f64>> {
        let mut it = line.split_whitespace();
        if it.next() != Some(tag) {
            return None;
        }
        let vals: Option<Vec<f64>> = it.map(|t| t.parse().ok()).collect();
        vals.filter(|v| v.len() == want)
    }

    let (n1, region_line) = lines
        .next()
        .ok_or_else(|| ScenarioIoError::Parse("missing region".into()))?;
    let r = floats(region_line, "region", 4).ok_or_else(|| err(n1, "bad region line"))?;
    let (n2, depot_line) = lines
        .next()
        .ok_or_else(|| ScenarioIoError::Parse("missing depot".into()))?;
    let d = floats(depot_line, "depot", 2).ok_or_else(|| err(n2, "bad depot line"))?;
    let (n3, radio_line) = lines
        .next()
        .ok_or_else(|| ScenarioIoError::Parse("missing radio".into()))?;
    let ra = floats(radio_line, "radio", 2).ok_or_else(|| err(n3, "bad radio line"))?;
    let (n4, uav_line) = lines
        .next()
        .ok_or_else(|| ScenarioIoError::Parse("missing uav".into()))?;
    // The override slot may be '-' so parse by hand.
    let toks: Vec<&str> = uav_line.split_whitespace().collect();
    if toks.len() != 7 || toks[0] != "uav" {
        return Err(err(n4, "bad uav line (want 'uav' + 6 fields)"));
    }
    let uav_nums: Option<Vec<f64>> = toks[1..6].iter().map(|t| t.parse().ok()).collect();
    let uav_nums = uav_nums.ok_or_else(|| err(n4, "bad uav numbers"))?;
    let override_v = match toks[6] {
        "-" => None,
        t => Some(JoulesPerMeter(
            t.parse().map_err(|_| err(n4, "bad travel override"))?,
        )),
    };

    let mut devices = Vec::new();
    for (n, line) in lines {
        let v = floats(line, "device", 3).ok_or_else(|| err(n, "bad device line"))?;
        devices.push(IotDevice {
            pos: Point2::new(v[0], v[1]),
            data: MegaBytes(v[2]),
        });
    }

    let scenario = Scenario {
        region: Aabb::new(Point2::new(r[0], r[1]), Point2::new(r[2], r[3])),
        devices,
        depot: Point2::new(d[0], d[1]),
        radio: RadioModel::new(Meters(ra[0]), MegaBytesPerSecond(ra[1])),
        uav: UavSpec {
            capacity: Joules(uav_nums[0]),
            speed: MetersPerSecond(uav_nums[1]),
            hover_power: Watts(uav_nums[2]),
            travel_power: Watts(uav_nums[3]),
            altitude: Meters(uav_nums[4]),
            travel_energy_override: override_v,
        },
    };
    scenario.validate().map_err(ScenarioIoError::Invalid)?;
    Ok(scenario)
}

/// Writes a scenario file (creating parent directories).
pub fn write_scenario(path: &std::path::Path, s: &Scenario) -> Result<(), ScenarioIoError> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, scenario_to_string(s))?;
    Ok(())
}

/// Reads and validates a scenario file.
pub fn read_scenario(path: &std::path::Path) -> Result<Scenario, ScenarioIoError> {
    scenario_from_str(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{uniform, ScenarioParams};

    #[test]
    fn roundtrip_is_bit_exact() {
        let s = uniform(&ScenarioParams::default().scaled(0.05), 9);
        let text = scenario_to_string(&s);
        let back = scenario_from_str(&text).unwrap();
        assert_eq!(back.depot, s.depot);
        assert_eq!(back.region, s.region);
        assert_eq!(back.radio, s.radio);
        assert_eq!(back.uav, s.uav);
        assert_eq!(back.devices.len(), s.devices.len());
        for (a, b) in back.devices.iter().zip(&s.devices) {
            assert_eq!(a, b, "device round-trip drifted");
        }
        // And the re-serialisation is identical.
        assert_eq!(scenario_to_string(&back), text);
    }

    #[test]
    fn physical_spec_roundtrips_none_override() {
        let mut s = uniform(&ScenarioParams::default().scaled(0.02), 1);
        s.uav.travel_energy_override = None;
        let back = scenario_from_str(&scenario_to_string(&s)).unwrap();
        assert_eq!(back.uav.travel_energy_override, None);
    }

    #[test]
    fn file_roundtrip() {
        let s = uniform(&ScenarioParams::default().scaled(0.02), 3);
        let dir = std::env::temp_dir().join("uavdc_io_test");
        let path = dir.join("scenario.txt");
        write_scenario(&path, &s).unwrap();
        let back = read_scenario(&path).unwrap();
        assert_eq!(back.devices, s.devices);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            scenario_from_str("nonsense v9\n"),
            Err(ScenarioIoError::Parse(_))
        ));
        assert!(matches!(
            scenario_from_str(""),
            Err(ScenarioIoError::Parse(_))
        ));
    }

    #[test]
    fn rejects_malformed_lines() {
        let s = uniform(&ScenarioParams::default().scaled(0.02), 1);
        let good = scenario_to_string(&s);
        // Corrupt the radio line.
        let bad = good.replace("radio ", "radio oops ");
        assert!(matches!(
            scenario_from_str(&bad),
            Err(ScenarioIoError::Parse(_))
        ));
        // Drop a required field from a device line.
        let device_line = good.lines().find(|l| l.starts_with("device")).unwrap();
        let trimmed = device_line.rsplit_once(' ').unwrap().0;
        let bad2 = good.replace(device_line, trimmed);
        assert!(matches!(
            scenario_from_str(&bad2),
            Err(ScenarioIoError::Parse(_))
        ));
    }

    #[test]
    fn rejects_physically_invalid_scenarios() {
        let s = uniform(&ScenarioParams::default().scaled(0.02), 1);
        // Device outside the region.
        let text = scenario_to_string(&s) + "device 99999 0 10\n";
        assert!(matches!(
            scenario_from_str(&text),
            Err(ScenarioIoError::Invalid(_))
        ));
    }

    #[test]
    fn error_display_names_the_line() {
        let s = uniform(&ScenarioParams::default().scaled(0.02), 1);
        let bad = scenario_to_string(&s).replace("depot ", "depot x ");
        let e = scenario_from_str(&bad).unwrap_err();
        assert!(e.to_string().contains("line 3"), "got: {e}");
    }
}
