//! Seeded scenario generators.
//!
//! Everything here is deterministic given the seed, so the experiment
//! harness can average over 15 instances (as the paper does) while staying
//! reproducible run to run.

use crate::radio::RadioModel;
use crate::scenario::{IotDevice, Scenario, UavSpec};
use crate::topology::{aggregate_network, RawDevice};
use crate::units::{Joules, MegaBytes, MegaBytesPerSecond, Meters};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uavdc_geom::{Aabb, Point2};

/// How per-device stored volumes are drawn (always clamped to
/// `[data_min, data_max]`).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum VolumeDistribution {
    /// Uniform on `[data_min, data_max]` — the paper's setting.
    #[default]
    Uniform,
    /// Exponential with the given mean, shifted by `data_min` and clamped
    /// at `data_max`: most devices hold little, a few hold a lot.
    Exponential {
        /// Mean of the exponential part, MB.
        mean: f64,
    },
    /// Bounded Pareto-like heavy tail: `data_min / u^(1/shape)` clamped at
    /// `data_max`. Smaller `shape` ⇒ heavier tail.
    HeavyTail {
        /// Tail index (`> 0`); 1.5–3 is typical.
        shape: f64,
    },
}

impl VolumeDistribution {
    fn sample(&self, rng: &mut SmallRng, lo: f64, hi: f64) -> f64 {
        match *self {
            VolumeDistribution::Uniform => rng.gen_range(lo..=hi),
            VolumeDistribution::Exponential { mean } => {
                let u: f64 = rng.gen_range(1e-12..1.0);
                (lo - mean * u.ln()).min(hi)
            }
            VolumeDistribution::HeavyTail { shape } => {
                assert!(shape > 0.0, "heavy-tail shape must be positive");
                let u: f64 = rng.gen_range(1e-12..1.0);
                (lo / u.powf(1.0 / shape)).min(hi)
            }
        }
    }
}

/// Parameters for the uniform generator; defaults mirror the paper's
/// experimental settings (§VII.A).
#[derive(Clone, Copy, Debug)]
pub struct ScenarioParams {
    /// Number of aggregate sensor nodes.
    pub num_devices: usize,
    /// Side length of the square monitoring region, metres.
    pub region_side: f64,
    /// Minimum stored data volume per node.
    pub data_min: MegaBytes,
    /// Maximum stored data volume per node.
    pub data_max: MegaBytes,
    /// Distribution of stored volumes within `[data_min, data_max]`.
    pub volume_distribution: VolumeDistribution,
    /// Ground coverage radius `R0`.
    pub coverage_radius: Meters,
    /// Uplink bandwidth `B`.
    pub bandwidth: MegaBytesPerSecond,
    /// UAV parameters.
    pub uav: UavSpec,
}

impl Default for ScenarioParams {
    /// The paper's evaluation setting, including its literal Eq. 9 travel
    /// accounting ([`UavSpec::paper_eval`]) — see EXPERIMENTS.md for why
    /// the physically derived 10 J/m leaves these instances unconstrained.
    fn default() -> Self {
        ScenarioParams {
            num_devices: 500,
            region_side: 1000.0,
            data_min: MegaBytes(100.0),
            data_max: MegaBytes(1000.0),
            volume_distribution: VolumeDistribution::Uniform,
            coverage_radius: Meters(50.0),
            bandwidth: MegaBytesPerSecond(150.0),
            uav: UavSpec::paper_eval(),
        }
    }
}

impl ScenarioParams {
    /// Scales the instance down (device count and region side) for fast
    /// tests and CI benches while keeping densities comparable.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "scale factor in (0, 1]");
        self.num_devices = ((self.num_devices as f64) * factor).round().max(1.0) as usize;
        self.region_side *= factor.sqrt();
        self
    }

    /// Overrides the UAV battery capacity (the paper's `E` sweeps).
    pub fn with_capacity(mut self, e: Joules) -> Self {
        self.uav.capacity = e;
        self
    }
}

fn radio_for(params: &ScenarioParams) -> RadioModel {
    RadioModel::with_ground_radius(
        params.coverage_radius,
        params.uav.altitude,
        params.bandwidth,
    )
}

/// The paper's default setting with the given instance seed: 500 nodes
/// uniform in 1000 m × 1000 m, volumes `U[100, 1000]` MB, depot at the
/// region centre.
pub fn paper_default(seed: u64) -> Scenario {
    uniform(&ScenarioParams::default(), seed)
}

/// Uniformly random deployment with the given parameters.
pub fn uniform(params: &ScenarioParams, seed: u64) -> Scenario {
    let mut rng = SmallRng::seed_from_u64(seed);
    let side = params.region_side;
    let devices = (0..params.num_devices)
        .map(|_| IotDevice {
            pos: Point2::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)),
            data: MegaBytes(params.volume_distribution.sample(
                &mut rng,
                params.data_min.value(),
                params.data_max.value(),
            )),
        })
        .collect();
    let scenario = Scenario {
        region: Aabb::square(side),
        devices,
        depot: Point2::new(side / 2.0, side / 2.0),
        radio: radio_for(params),
        uav: params.uav,
    };
    debug_assert_eq!(scenario.validate(), Ok(()));
    scenario
}

/// Clustered deployment: devices concentrate around `num_clusters`
/// uniformly placed centres with Gaussian spread `sigma` (rejection-
/// sampled into the region). Models the paper's smart-city motivation
/// where sensors cluster around facilities.
pub fn clustered(params: &ScenarioParams, num_clusters: usize, sigma: f64, seed: u64) -> Scenario {
    assert!(num_clusters > 0, "need at least one cluster");
    assert!(sigma > 0.0, "sigma must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let side = params.region_side;
    let centers: Vec<Point2> = (0..num_clusters)
        .map(|_| Point2::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    let mut devices = Vec::with_capacity(params.num_devices);
    while devices.len() < params.num_devices {
        let c = centers[rng.gen_range(0..num_clusters)];
        // Box-Muller Gaussian offsets.
        let (u1, u2): (f64, f64) = (rng.gen_range(1e-12..1.0), rng.gen_range(0.0..1.0));
        let r = sigma * (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        let p = Point2::new(c.x + r * theta.cos(), c.y + r * theta.sin());
        if p.x < 0.0 || p.x > side || p.y < 0.0 || p.y > side {
            continue;
        }
        devices.push(IotDevice {
            pos: p,
            data: MegaBytes(params.volume_distribution.sample(
                &mut rng,
                params.data_min.value(),
                params.data_max.value(),
            )),
        });
    }
    let scenario = Scenario {
        region: Aabb::square(side),
        devices,
        depot: Point2::new(side / 2.0, side / 2.0),
        radio: radio_for(params),
        uav: params.uav,
    };
    debug_assert_eq!(scenario.validate(), Ok(()));
    scenario
}

/// Two-tier generation: deploy `raw_count` raw IoT devices uniformly,
/// elect aggregates within `comm_range`, and forward data (§III.A's full
/// story). The aggregate volumes replace the per-node uniform draw.
pub fn two_tier(
    params: &ScenarioParams,
    raw_count: usize,
    comm_range: Meters,
    seed: u64,
) -> Scenario {
    let mut rng = SmallRng::seed_from_u64(seed);
    let side = params.region_side;
    let raw: Vec<RawDevice> = (0..raw_count)
        .map(|_| RawDevice {
            pos: Point2::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)),
            data: MegaBytes(params.volume_distribution.sample(
                &mut rng,
                params.data_min.value(),
                params.data_max.value(),
            )),
        })
        .collect();
    let outcome = aggregate_network(&raw, comm_range);
    let scenario = Scenario {
        region: Aabb::square(side),
        devices: outcome.aggregates,
        depot: Point2::new(side / 2.0, side / 2.0),
        radio: radio_for(params),
        uav: params.uav,
    };
    debug_assert_eq!(scenario.validate(), Ok(()));
    scenario
}

/// Jittered grid deployment: devices on a `⌈√n⌉ × ⌈√n⌉` lattice with
/// uniform jitter up to `jitter` metres per axis (clamped to the region).
/// Models planned installations (street lights, meters) as opposed to the
/// random scatter of [`uniform`].
pub fn grid_deployment(params: &ScenarioParams, jitter: f64, seed: u64) -> Scenario {
    assert!(jitter >= 0.0 && jitter.is_finite(), "jitter must be >= 0");
    let mut rng = SmallRng::seed_from_u64(seed);
    let side = params.region_side;
    let n = params.num_devices;
    let cols = (n as f64).sqrt().ceil() as usize;
    let pitch = side / cols as f64;
    let mut devices = Vec::with_capacity(n);
    'outer: for row in 0..cols {
        for col in 0..cols {
            if devices.len() >= n {
                break 'outer;
            }
            let base = Point2::new((col as f64 + 0.5) * pitch, (row as f64 + 0.5) * pitch);
            let dx = if jitter > 0.0 {
                rng.gen_range(-jitter..=jitter)
            } else {
                0.0
            };
            let dy = if jitter > 0.0 {
                rng.gen_range(-jitter..=jitter)
            } else {
                0.0
            };
            let p = Point2::new(
                (base.x + dx).clamp(0.0, side),
                (base.y + dy).clamp(0.0, side),
            );
            devices.push(IotDevice {
                pos: p,
                data: MegaBytes(params.volume_distribution.sample(
                    &mut rng,
                    params.data_min.value(),
                    params.data_max.value(),
                )),
            });
        }
    }
    let scenario = Scenario {
        region: Aabb::square(side),
        devices,
        depot: Point2::new(side / 2.0, side / 2.0),
        radio: radio_for(params),
        uav: params.uav,
    };
    debug_assert_eq!(scenario.validate(), Ok(()));
    scenario
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Empirical quantile `q` in `[0, 1]` of `values` (NaN-safe sort).
    fn quantile(values: &[f64], q: f64) -> f64 {
        assert!(!values.is_empty(), "quantile of empty sample");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| uavdc_geom::cmp_f64(*a, *b));
        let k = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[k.min(sorted.len() - 1)]
    }

    #[test]
    fn paper_default_matches_section_vii() {
        let s = paper_default(1);
        assert_eq!(s.num_devices(), 500);
        assert_eq!(s.region.width(), 1000.0);
        assert_eq!(s.uav.capacity, Joules(3.0e5));
        assert!((s.coverage_radius().value() - 50.0).abs() < 1e-9);
        for d in &s.devices {
            assert!(d.data.value() >= 100.0 && d.data.value() <= 1000.0);
        }
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let a = paper_default(7);
        let b = paper_default(7);
        assert_eq!(a.devices.len(), b.devices.len());
        for (x, y) in a.devices.iter().zip(&b.devices) {
            assert_eq!(x, y);
        }
        let c = paper_default(8);
        assert!(a.devices.iter().zip(&c.devices).any(|(x, y)| x != y));
    }

    #[test]
    fn scaled_params_shrink_instance() {
        let p = ScenarioParams::default().scaled(0.1);
        assert_eq!(p.num_devices, 50);
        assert!((p.region_side - 1000.0 * 0.1f64.sqrt()).abs() < 1e-9);
        let s = uniform(&p, 3);
        assert_eq!(s.num_devices(), 50);
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn capacity_override() {
        let p = ScenarioParams::default().with_capacity(Joules(9.0e5));
        assert_eq!(uniform(&p, 1).uav.capacity, Joules(9.0e5));
    }

    #[test]
    fn clustered_stays_in_region_and_clusters() {
        let p = ScenarioParams {
            num_devices: 200,
            ..ScenarioParams::default()
        };
        let s = clustered(&p, 5, 40.0, 11);
        assert_eq!(s.num_devices(), 200);
        assert_eq!(s.validate(), Ok(()));
        // Clustering sanity: mean nearest-neighbour distance should be far
        // below the uniform expectation (~0.5/sqrt(density) ≈ 35 m).
        let pts = s.device_positions();
        let grid = uavdc_geom::SpatialGrid::build(&pts, 50.0);
        let mut total = 0.0;
        for (i, &p0) in pts.iter().enumerate() {
            let mut best = f64::INFINITY;
            for j in grid.query_radius(p0, 200.0) {
                if j != i {
                    best = best.min(pts[j].distance(p0));
                }
            }
            total += best;
        }
        let mean_nn = total / (pts.len() as f64);
        assert!(
            mean_nn < 25.0,
            "clustered instance not clustered (mean nn {mean_nn})"
        );
    }

    #[test]
    fn two_tier_produces_sparser_heavier_aggregates() {
        let p = ScenarioParams {
            num_devices: 0,
            ..ScenarioParams::default()
        };
        let s = two_tier(&p, 400, Meters(60.0), 5);
        assert!(s.num_devices() > 0);
        assert!(s.num_devices() < 400, "aggregation must reduce node count");
        assert_eq!(s.validate(), Ok(()));
        // Aggregates hold forwarded data, so the average volume exceeds the
        // raw per-device maximum less often than not; just check totals are
        // plausible.
        assert!(s.total_data().value() > 0.0);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn zero_scale_rejected() {
        let _ = ScenarioParams::default().scaled(0.0);
    }

    #[test]
    fn exponential_volumes_stay_in_bounds_and_skew_low() {
        let p = ScenarioParams {
            num_devices: 400,
            volume_distribution: VolumeDistribution::Exponential { mean: 150.0 },
            ..ScenarioParams::default()
        };
        let s = uniform(&p, 2);
        let volumes: Vec<f64> = s.devices.iter().map(|d| d.data.value()).collect();
        for &v in &volumes {
            assert!((100.0..=1000.0).contains(&v), "volume {v} out of bounds");
        }
        // Exponential skews low: the median sits well below the uniform's 550.
        let median = quantile(&volumes, 0.5);
        assert!(median < 350.0, "exponential median {median} not skewed low");
    }

    #[test]
    fn heavy_tail_volumes_have_outliers() {
        let p = ScenarioParams {
            num_devices: 400,
            volume_distribution: VolumeDistribution::HeavyTail { shape: 1.2 },
            ..ScenarioParams::default()
        };
        let s = uniform(&p, 3);
        let volumes: Vec<f64> = s.devices.iter().map(|d| d.data.value()).collect();
        for &v in &volumes {
            assert!((100.0..=1000.0).contains(&v));
        }
        let maxed = volumes.iter().filter(|&&v| v >= 999.0).count();
        assert!(
            maxed >= 5,
            "heavy tail should clamp some devices at the cap ({maxed})"
        );
        assert!(
            quantile(&volumes, 0.5) < 300.0,
            "bulk should sit near data_min"
        );
    }

    #[test]
    fn grid_deployment_is_regular() {
        let p = ScenarioParams {
            num_devices: 100,
            ..ScenarioParams::default()
        };
        let s = grid_deployment(&p, 0.0, 1);
        assert_eq!(s.num_devices(), 100);
        assert_eq!(s.validate(), Ok(()));
        // Without jitter, nearest-neighbour spacing equals the pitch.
        let pitch = 1000.0 / 10.0;
        let pts = s.device_positions();
        let mut min_nn = f64::INFINITY;
        for (i, a) in pts.iter().enumerate() {
            for (j, b) in pts.iter().enumerate() {
                if i != j {
                    min_nn = min_nn.min(a.distance(*b));
                }
            }
        }
        assert!(
            (min_nn - pitch).abs() < 1e-9,
            "pitch {pitch} vs nn {min_nn}"
        );
    }

    #[test]
    fn grid_deployment_jitter_stays_in_region() {
        let p = ScenarioParams {
            num_devices: 64,
            ..ScenarioParams::default()
        };
        let s = grid_deployment(&p, 80.0, 5);
        assert_eq!(s.validate(), Ok(()));
        let a = grid_deployment(&p, 80.0, 5);
        for (x, y) in s.devices.iter().zip(&a.devices) {
            assert_eq!(x, y, "grid generator must be deterministic");
        }
    }
}
