//! Radio/link model between ground sensors and the hovering UAV.

use crate::units::{MegaBytesPerSecond, Meters};

/// Uplink model shared by all aggregate sensor nodes.
///
/// Per the paper (§III.B): every node has transmission range `R` and
/// uploads at fixed bandwidth `B` when the UAV is within range. When the
/// UAV hovers at altitude `H ≤ R`, the set of nodes it can serve
/// simultaneously (via OFDMA) is the disc of radius
/// `R0 = sqrt(R² − H²)` around the projection of its hovering location.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RadioModel {
    /// Sensor transmission range `R` (3-D, slant), metres.
    pub range: Meters,
    /// Per-node uplink bandwidth `B`.
    pub bandwidth: MegaBytesPerSecond,
}

impl RadioModel {
    /// Creates a model from range and bandwidth.
    ///
    /// # Panics
    /// Panics on non-positive or non-finite parameters.
    pub fn new(range: Meters, bandwidth: MegaBytesPerSecond) -> Self {
        assert!(
            range.is_finite() && range.value() > 0.0,
            "range must be positive"
        );
        assert!(
            bandwidth.is_finite() && bandwidth.value() > 0.0,
            "bandwidth must be positive"
        );
        RadioModel { range, bandwidth }
    }

    /// Builds the model backwards from a desired *ground* coverage radius
    /// `R0` at a given flight altitude: `R = sqrt(R0² + H²)`.
    ///
    /// The paper's evaluation fixes `R0 = 50 m` directly; this constructor
    /// lets scenarios do the same for any altitude.
    pub fn with_ground_radius(r0: Meters, altitude: Meters, bandwidth: MegaBytesPerSecond) -> Self {
        assert!(
            r0.is_finite() && r0.value() > 0.0,
            "ground radius must be positive"
        );
        assert!(
            altitude.is_finite() && altitude.value() >= 0.0,
            "altitude must be >= 0"
        );
        let r = (r0.value() * r0.value() + altitude.value() * altitude.value()).sqrt();
        RadioModel::new(Meters(r), bandwidth)
    }

    /// Ground coverage radius `R0 = sqrt(R² − H²)` at altitude `h`.
    ///
    /// Returns `None` when the altitude exceeds the transmission range
    /// (the UAV would be out of reach even directly overhead).
    pub fn coverage_radius(&self, h: Meters) -> Option<Meters> {
        if h.value() < 0.0 || h > self.range {
            return None;
        }
        Some(Meters(
            (self.range.value().powi(2) - h.value().powi(2)).sqrt(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_radius_pythagoras() {
        let r = RadioModel::new(Meters(50.0), MegaBytesPerSecond(150.0));
        let r0 = r.coverage_radius(Meters(30.0)).unwrap();
        assert!((r0.value() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_at_ground_level_is_full_range() {
        let r = RadioModel::new(Meters(50.0), MegaBytesPerSecond(150.0));
        assert_eq!(r.coverage_radius(Meters(0.0)).unwrap(), Meters(50.0));
    }

    #[test]
    fn coverage_at_max_altitude_is_zero() {
        let r = RadioModel::new(Meters(50.0), MegaBytesPerSecond(150.0));
        assert_eq!(r.coverage_radius(Meters(50.0)).unwrap(), Meters(0.0));
    }

    #[test]
    fn too_high_is_none() {
        let r = RadioModel::new(Meters(50.0), MegaBytesPerSecond(150.0));
        assert_eq!(r.coverage_radius(Meters(50.1)), None);
        assert_eq!(r.coverage_radius(Meters(-1.0)), None);
    }

    #[test]
    fn ground_radius_constructor_roundtrips() {
        let m =
            RadioModel::with_ground_radius(Meters(50.0), Meters(30.0), MegaBytesPerSecond(150.0));
        let r0 = m.coverage_radius(Meters(30.0)).unwrap();
        assert!((r0.value() - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn zero_range_panics() {
        let _ = RadioModel::new(Meters(0.0), MegaBytesPerSecond(1.0));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = RadioModel::new(Meters(1.0), MegaBytesPerSecond(0.0));
    }
}
