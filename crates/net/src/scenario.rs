//! Complete data-collection scenarios: region, devices, depot, UAV.

use crate::radio::RadioModel;
use crate::units::{Joules, JoulesPerMeter, MegaBytes, Meters, MetersPerSecond, Watts};
use uavdc_geom::{Aabb, Point2};

/// Identifier of an aggregate sensor node within a [`Scenario`]
/// (its index in [`Scenario::devices`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// The index this id wraps.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An aggregate sensor node: ground position plus the volume of stored
/// data awaiting collection (its own sensing data and the data forwarded
/// by neighbouring non-aggregate IoT devices).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IotDevice {
    /// Ground position, metres.
    pub pos: Point2,
    /// Stored data volume `D_v`.
    pub data: MegaBytes,
}

/// The UAV's physical parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UavSpec {
    /// Battery capacity `E`.
    pub capacity: Joules,
    /// Constant flying speed.
    pub speed: MetersPerSecond,
    /// Hovering power `η_h`.
    pub hover_power: Watts,
    /// Travel power `η_t` (at the constant flying speed).
    pub travel_power: Watts,
    /// Flight altitude `H`.
    pub altitude: Meters,
    /// Explicit travel energy density. `None` derives the physical value
    /// `travel_power / speed`. The paper's evaluation charges its edge
    /// weights `ℓ · η_t` with `ℓ` in *metres* (Eq. 9 taken literally,
    /// i.e. 100 J per metre), which is what makes its instances
    /// energy-constrained; [`UavSpec::paper_eval`] sets this override so
    /// the reported figure magnitudes reproduce.
    pub travel_energy_override: Option<JoulesPerMeter>,
}

impl UavSpec {
    /// The DJI-Phantom-flavoured parameters the paper states:
    /// `E = 3·10⁵ J`, 10 m/s, `η_h = 150 J/s`, `η_t = 100 J/s`, `H = 0`
    /// treated as negligible against `R0 = 50 m` (the paper specifies `R0`
    /// directly). Travel energy is the physically derived
    /// `η_t / speed = 10 J/m`.
    pub fn paper_default() -> Self {
        UavSpec {
            capacity: Joules(3.0e5),
            speed: MetersPerSecond(10.0),
            hover_power: Watts(150.0),
            travel_power: Watts(100.0),
            altitude: Meters(0.0),
            travel_energy_override: None,
        }
    }

    /// The parameters that reproduce the paper's *evaluation numbers*:
    /// as [`UavSpec::paper_default`] but charging `η_t = 100 J` per
    /// **metre** of travel, matching the literal `ℓ(s_j, s_k)·η_t` of
    /// Eq. 9 with distances in metres. Under the physically derived
    /// 10 J/m the paper's default instances are not energy-constrained at
    /// all (every algorithm collects everything), while this accounting
    /// reproduces the reported magnitudes (e.g. benchmark ≈ 74 GB at
    /// `E = 3·10⁵ J`); see EXPERIMENTS.md.
    pub fn paper_eval() -> Self {
        UavSpec {
            travel_energy_override: Some(JoulesPerMeter(100.0)),
            ..UavSpec::paper_default()
        }
    }

    /// Travel energy per metre: the override if set, else `η_t / speed`.
    #[inline]
    pub fn travel_energy_per_meter(&self) -> JoulesPerMeter {
        self.travel_energy_override
            .unwrap_or(self.travel_power / self.speed)
    }

    /// Energy consumed flying a given distance.
    #[inline]
    pub fn travel_energy(&self, d: Meters) -> Joules {
        self.travel_energy_per_meter() * d
    }

    /// Energy consumed hovering for a given duration.
    #[inline]
    pub fn hover_energy(&self, t: crate::units::Seconds) -> Joules {
        self.hover_power * t
    }

    /// Validates physical sanity.
    pub fn validate(&self) -> Result<(), String> {
        let checks = [
            (
                self.capacity.is_finite() && self.capacity.value() >= 0.0,
                "capacity",
            ),
            (self.speed.is_finite() && self.speed.value() > 0.0, "speed"),
            (
                self.hover_power.is_finite() && self.hover_power.value() > 0.0,
                "hover_power",
            ),
            (
                self.travel_power.is_finite() && self.travel_power.value() > 0.0,
                "travel_power",
            ),
            (
                self.altitude.is_finite() && self.altitude.value() >= 0.0,
                "altitude",
            ),
            (
                self.travel_energy_override
                    .is_none_or(|d| d.is_finite() && d.value() > 0.0),
                "travel_energy_override",
            ),
        ];
        for (ok, what) in checks {
            if !ok {
                return Err(format!("invalid UAV spec field: {what}"));
            }
        }
        Ok(())
    }
}

/// A complete, validated data-collection instance.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Monitoring region (hovering locations are generated inside it).
    pub region: Aabb,
    /// Aggregate sensor nodes with their stored volumes.
    pub devices: Vec<IotDevice>,
    /// UAV depot `d` (start and end of every tour).
    pub depot: Point2,
    /// Uplink model.
    pub radio: RadioModel,
    /// UAV parameters.
    pub uav: UavSpec,
}

impl Scenario {
    /// Validates the whole instance; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        self.uav.validate()?;
        if !self.depot.is_finite() {
            return Err("depot position not finite".into());
        }
        if self.radio.coverage_radius(self.uav.altitude).is_none() {
            return Err(format!(
                "flight altitude {} exceeds sensor transmission range {}",
                self.uav.altitude, self.radio.range
            ));
        }
        for (i, d) in self.devices.iter().enumerate() {
            if !d.pos.is_finite() {
                return Err(format!("device {i} position not finite"));
            }
            if !d.data.is_finite() || d.data.value() < 0.0 {
                return Err(format!("device {i} data volume invalid: {}", d.data));
            }
            if !self.region.contains(d.pos) {
                return Err(format!("device {i} at {} outside region", d.pos));
            }
        }
        Ok(())
    }

    /// Ground coverage radius `R0` of the UAV at its flight altitude,
    /// or `None` when the altitude exceeds the transmission range
    /// (i.e. the scenario would fail [`Scenario::validate`]).
    pub fn try_coverage_radius(&self) -> Option<Meters> {
        self.radio.coverage_radius(self.uav.altitude)
    }

    /// Ground coverage radius `R0` of the UAV at its flight altitude.
    ///
    /// # Panics
    /// Panics when the altitude exceeds the transmission range; call
    /// [`Scenario::validate`] first to surface that as an error, or use
    /// [`Scenario::try_coverage_radius`] on untrusted inputs.
    pub fn coverage_radius(&self) -> Meters {
        self.try_coverage_radius()
            // lint:allow(panic-site): documented API contract; validate()/try_coverage_radius() are the fallible paths
            .expect("altitude exceeds transmission range; scenario is invalid")
    }

    /// Number of aggregate devices.
    #[inline]
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Sum of all stored data — an upper bound on any plan's collected
    /// volume.
    pub fn total_data(&self) -> MegaBytes {
        self.devices.iter().map(|d| d.data).sum()
    }

    /// Device positions as a plain slice of points (for spatial indexing).
    pub fn device_positions(&self) -> Vec<Point2> {
        self.devices.iter().map(|d| d.pos).collect()
    }

    /// FNV-1a fingerprint of the instance *layout*: region, devices,
    /// depot, radio model, and every UAV parameter **except** the battery
    /// capacity. Each `f64` is folded in as its exact IEEE-754 bit
    /// pattern, so two scenarios hash equal iff their layouts are
    /// bit-identical.
    ///
    /// Capacity is deliberately excluded: planner setup artifacts
    /// (candidate sets, initial tours) depend only on geometry, coverage,
    /// and energy *rates*, so capacity sweeps over one instance can share
    /// them (the keying contract of `uavdc-core`'s artifact cache).
    pub fn layout_fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.region.min.x.to_bits());
        mix(self.region.min.y.to_bits());
        mix(self.region.max.x.to_bits());
        mix(self.region.max.y.to_bits());
        mix(self.depot.x.to_bits());
        mix(self.depot.y.to_bits());
        mix(self.radio.range.value().to_bits());
        mix(self.radio.bandwidth.value().to_bits());
        mix(self.uav.speed.value().to_bits());
        mix(self.uav.hover_power.value().to_bits());
        mix(self.uav.travel_power.value().to_bits());
        mix(self.uav.altitude.value().to_bits());
        // The per-metre rate actually charged, not the Option shape: two
        // specs with the same effective rate plan identically.
        mix(self.uav.travel_energy_per_meter().value().to_bits());
        mix(self.devices.len() as u64);
        for d in &self.devices {
            mix(d.pos.x.to_bits());
            mix(d.pos.y.to_bits());
            mix(d.data.value().to_bits());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MegaBytesPerSecond;

    fn tiny_scenario() -> Scenario {
        Scenario {
            region: Aabb::square(100.0),
            devices: vec![
                IotDevice {
                    pos: Point2::new(10.0, 10.0),
                    data: MegaBytes(100.0),
                },
                IotDevice {
                    pos: Point2::new(90.0, 90.0),
                    data: MegaBytes(400.0),
                },
            ],
            depot: Point2::new(0.0, 0.0),
            radio: RadioModel::new(Meters(50.0), MegaBytesPerSecond(150.0)),
            uav: UavSpec::paper_default(),
        }
    }

    #[test]
    fn valid_scenario_passes() {
        assert_eq!(tiny_scenario().validate(), Ok(()));
    }

    #[test]
    fn paper_defaults_match_section_vii() {
        let u = UavSpec::paper_default();
        assert_eq!(u.capacity, Joules(3.0e5));
        assert_eq!(u.speed, MetersPerSecond(10.0));
        assert_eq!(u.hover_power, Watts(150.0));
        assert_eq!(u.travel_power, Watts(100.0));
        // 100 J/s at 10 m/s = 10 J per metre of travel.
        assert_eq!(u.travel_energy_per_meter(), JoulesPerMeter(10.0));
        assert_eq!(u.travel_energy(Meters(30_000.0)), Joules(3.0e5));
    }

    #[test]
    fn hover_energy_is_power_times_time() {
        let u = UavSpec::paper_default();
        assert_eq!(u.hover_energy(crate::units::Seconds(6.0)), Joules(900.0));
    }

    #[test]
    fn device_outside_region_rejected() {
        let mut s = tiny_scenario();
        s.devices.push(IotDevice {
            pos: Point2::new(200.0, 0.0),
            data: MegaBytes(1.0),
        });
        assert!(s.validate().unwrap_err().contains("outside region"));
    }

    #[test]
    fn negative_data_rejected() {
        let mut s = tiny_scenario();
        s.devices[0].data = MegaBytes(-1.0);
        assert!(s.validate().unwrap_err().contains("data volume"));
    }

    #[test]
    fn altitude_above_range_rejected() {
        let mut s = tiny_scenario();
        s.uav.altitude = Meters(60.0); // range is 50
        assert!(s.validate().unwrap_err().contains("exceeds"));
    }

    #[test]
    fn totals_and_positions() {
        let s = tiny_scenario();
        assert_eq!(s.total_data(), MegaBytes(500.0));
        assert_eq!(s.num_devices(), 2);
        assert_eq!(s.device_positions()[1], Point2::new(90.0, 90.0));
    }

    #[test]
    fn coverage_radius_uses_altitude() {
        let mut s = tiny_scenario();
        s.uav.altitude = Meters(30.0);
        assert!((s.coverage_radius().value() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn layout_fingerprint_ignores_capacity_only() {
        let s = tiny_scenario();
        let mut capped = s.clone();
        capped.uav.capacity = Joules(9.9e5);
        assert_eq!(
            s.layout_fingerprint(),
            capped.layout_fingerprint(),
            "capacity must not enter the layout key"
        );
        let mut moved = s.clone();
        moved.devices[0].pos = Point2::new(10.0, 11.0);
        assert_ne!(s.layout_fingerprint(), moved.layout_fingerprint());
        let mut drained = s.clone();
        drained.devices[1].data = MegaBytes(399.0);
        assert_ne!(s.layout_fingerprint(), drained.layout_fingerprint());
        let mut higher = s;
        higher.uav.altitude = Meters(30.0);
        assert_ne!(
            higher.layout_fingerprint(),
            tiny_scenario().layout_fingerprint()
        );
    }

    #[test]
    fn layout_fingerprint_sees_effective_travel_rate() {
        // An explicit override equal to the derived rate hashes the same;
        // a different override hashes differently.
        let s = tiny_scenario();
        let mut same = s.clone();
        same.uav.travel_energy_override = Some(s.uav.travel_energy_per_meter());
        assert_eq!(s.layout_fingerprint(), same.layout_fingerprint());
        let mut heavier = s.clone();
        heavier.uav.travel_energy_override = Some(JoulesPerMeter(100.0));
        assert_ne!(s.layout_fingerprint(), heavier.layout_fingerprint());
    }

    #[test]
    fn invalid_uav_field_reported() {
        let mut s = tiny_scenario();
        s.uav.speed = MetersPerSecond(0.0);
        assert!(s.validate().unwrap_err().contains("speed"));
    }
}
