//! 2-D and 3-D points with the handful of vector operations the planners use.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point (or vector) in the ground plane, in metres.
///
/// Sensor nodes live at `(x, y, 0)`; the paper projects UAV hovering
/// locations onto the ground plane for coverage tests, so almost all
/// planning geometry is 2-D.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// Easting coordinate in metres.
    pub x: f64,
    /// Northing coordinate in metres.
    pub y: f64,
}

impl Point2 {
    /// Origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point2) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this in radius tests: `a.distance_sq(b) <= r * r` avoids the
    /// square root in the hot coverage loops.
    #[inline]
    pub fn distance_sq(self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean norm of the vector from the origin.
    #[inline]
    pub fn norm(self) -> f64 {
        self.distance(Point2::ORIGIN)
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(self, other: Point2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Linear interpolation: returns `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        Point2::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Midpoint of the segment from `self` to `other`.
    #[inline]
    pub fn midpoint(self, other: Point2) -> Point2 {
        self.lerp(other, 0.5)
    }

    /// Lifts this ground point to altitude `h`, producing the hovering
    /// location directly above it.
    #[inline]
    pub fn at_altitude(self, h: f64) -> Point3 {
        Point3::new(self.x, self.y, h)
    }

    /// True when every coordinate is finite (not NaN/inf).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Debug for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2} m, {:.2} m)", self.x, self.y)
    }
}

impl Add for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, rhs: Point2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point2 {
    #[inline]
    fn add_assign(&mut self, rhs: Point2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, rhs: Point2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Point2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Point2 {
    type Output = Point2;
    #[inline]
    fn mul(self, s: f64) -> Point2 {
        Point2::new(self.x * s, self.y * s)
    }
}

impl Div<f64> for Point2 {
    type Output = Point2;
    #[inline]
    fn div(self, s: f64) -> Point2 {
        Point2::new(self.x / s, self.y / s)
    }
}

impl Neg for Point2 {
    type Output = Point2;
    #[inline]
    fn neg(self) -> Point2 {
        Point2::new(-self.x, -self.y)
    }
}

/// A point in 3-D space: ground coordinates plus altitude, in metres.
///
/// Used for hovering locations `(x, y, H)`. The coverage radius on the
/// ground is `R0 = sqrt(R^2 - H^2)` where `R` is the sensor transmission
/// range (computed in `uavdc-net`'s radio model).
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Point3 {
    /// Easting coordinate in metres.
    pub x: f64,
    /// Northing coordinate in metres.
    pub y: f64,
    /// Altitude above ground in metres.
    pub z: f64,
}

impl Point3 {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    /// Euclidean distance to `other` in 3-D.
    #[inline]
    pub fn distance(self, other: Point3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Projection onto the ground plane (drops the altitude).
    #[inline]
    pub fn ground(self) -> Point2 {
        Point2::new(self.x, self.y)
    }

    /// 3-D slant distance from this (airborne) point to a ground point.
    ///
    /// This is the actual radio link distance between the UAV and a sensor.
    #[inline]
    pub fn slant_to_ground(self, p: Point2) -> f64 {
        let dxy = self.ground().distance_sq(p);
        (dxy + self.z * self.z).sqrt()
    }
}

impl fmt::Debug for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point2::new(-1.5, 2.0);
        let b = Point2::new(7.0, -3.25);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point2::new(0.0, 10.0);
        let b = Point2::new(10.0, 0.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Point2::new(5.0, 5.0));
    }

    #[test]
    fn vector_ops() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(3.0, -1.0);
        assert_eq!(a + b, Point2::new(4.0, 1.0));
        assert_eq!(a - b, Point2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point2::new(1.5, -0.5));
        assert_eq!(-a, Point2::new(-1.0, -2.0));
        assert_eq!(a.dot(b), 1.0);
    }

    #[test]
    fn altitude_projection_roundtrip() {
        let g = Point2::new(4.0, 9.0);
        let h = g.at_altitude(30.0);
        assert_eq!(h.z, 30.0);
        assert_eq!(h.ground(), g);
    }

    #[test]
    fn slant_distance_includes_altitude() {
        // UAV at 40 m altitude, sensor 30 m away on the ground: 50 m slant.
        let uav = Point3::new(0.0, 0.0, 40.0);
        let sensor = Point2::new(30.0, 0.0);
        assert!((uav.slant_to_ground(sensor) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn point3_distance() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(2.0, 3.0, 6.0);
        assert_eq!(a.distance(b), 7.0);
    }

    #[test]
    fn finite_check_rejects_nan() {
        assert!(Point2::new(1.0, 2.0).is_finite());
        assert!(!Point2::new(f64::NAN, 0.0).is_finite());
        assert!(!Point2::new(0.0, f64::INFINITY).is_finite());
    }
}
