//! Discs: the UAV's projected hovering coverage circle.

use crate::{Aabb, Point2};

/// A closed disc of radius `r` centred at `center`, in metres.
///
/// When the UAV hovers at `(x, y, H)`, the sensors it can collect from are
/// those inside the disc of radius `R0 = sqrt(R^2 - H^2)` centred at
/// `(x, y)` on the ground — this type models that coverage region.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Disc {
    /// Disc centre (projected hovering location).
    pub center: Point2,
    /// Radius in metres (the paper's `R0`).
    pub r: f64,
}

impl Disc {
    /// Creates a disc; `r` must be non-negative and finite.
    ///
    /// # Panics
    /// Panics on a negative or non-finite radius — those are programming
    /// errors, not recoverable states.
    pub fn new(center: Point2, r: f64) -> Self {
        assert!(
            r.is_finite() && r >= 0.0,
            "disc radius must be finite and >= 0, got {r}"
        );
        Disc { center, r }
    }

    /// True when `p` lies inside or on the disc boundary.
    ///
    /// Matches the paper's coverage predicate
    /// `sqrt((x_i - x_j)^2 + (y_i - y_j)^2) <= R0` (Eq. 2).
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        self.center.distance_sq(p) <= self.r * self.r
    }

    /// True when the two discs share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Disc) -> bool {
        let rr = self.r + other.r;
        self.center.distance_sq(other.center) <= rr * rr
    }

    /// Disc area in square metres.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.r * self.r
    }

    /// Tight axis-aligned bounding box of the disc.
    pub fn bounding_box(&self) -> Aabb {
        Aabb::new(
            Point2::new(self.center.x - self.r, self.center.y - self.r),
            Point2::new(self.center.x + self.r, self.center.y + self.r),
        )
    }
}

/// Area of the intersection ("lens") of two discs, in square metres.
///
/// Used by the coverage-overlap analysis benches: the expected number of
/// sensors double-counted by two hovering locations is proportional to this
/// overlap area under uniform deployment.
pub fn disc_disc_overlap_area(a: &Disc, b: &Disc) -> f64 {
    let d = a.center.distance(b.center);
    if d >= a.r + b.r {
        return 0.0;
    }
    let (r_small, r_big) = if a.r <= b.r { (a.r, b.r) } else { (b.r, a.r) };
    if d <= r_big - r_small {
        // Smaller disc entirely inside the bigger one.
        return std::f64::consts::PI * r_small * r_small;
    }
    // Standard circular-lens formula.
    let d2 = d * d;
    let r1 = a.r;
    let r2 = b.r;
    let alpha = ((d2 + r1 * r1 - r2 * r2) / (2.0 * d * r1))
        .clamp(-1.0, 1.0)
        .acos();
    let beta = ((d2 + r2 * r2 - r1 * r1) / (2.0 * d * r2))
        .clamp(-1.0, 1.0)
        .acos();
    let tri = 0.5
        * ((-d + r1 + r2) * (d + r1 - r2) * (d - r1 + r2) * (d + r1 + r2))
            .max(0.0)
            .sqrt();
    r1 * r1 * alpha + r2 * r2 * beta - tri
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn containment_includes_boundary() {
        let d = Disc::new(Point2::ORIGIN, 50.0);
        assert!(d.contains(Point2::new(50.0, 0.0)));
        assert!(d.contains(Point2::new(30.0, 40.0)));
        assert!(!d.contains(Point2::new(50.0001, 0.0)));
    }

    #[test]
    #[should_panic(expected = "disc radius")]
    fn negative_radius_panics() {
        let _ = Disc::new(Point2::ORIGIN, -1.0);
    }

    #[test]
    fn intersection_by_center_distance() {
        let a = Disc::new(Point2::ORIGIN, 10.0);
        let b = Disc::new(Point2::new(19.0, 0.0), 10.0);
        let c = Disc::new(Point2::new(21.0, 0.0), 10.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        // Exactly tangent discs count as intersecting (closed discs).
        let t = Disc::new(Point2::new(20.0, 0.0), 10.0);
        assert!(a.intersects(&t));
    }

    #[test]
    fn area_and_bbox() {
        let d = Disc::new(Point2::new(5.0, 5.0), 2.0);
        assert!((d.area() - 4.0 * PI).abs() < 1e-12);
        let bb = d.bounding_box();
        assert_eq!(bb.min, Point2::new(3.0, 3.0));
        assert_eq!(bb.max, Point2::new(7.0, 7.0));
    }

    #[test]
    fn overlap_disjoint_is_zero() {
        let a = Disc::new(Point2::ORIGIN, 5.0);
        let b = Disc::new(Point2::new(20.0, 0.0), 5.0);
        assert_eq!(disc_disc_overlap_area(&a, &b), 0.0);
    }

    #[test]
    fn overlap_contained_is_smaller_area() {
        let big = Disc::new(Point2::ORIGIN, 10.0);
        let small = Disc::new(Point2::new(1.0, 0.0), 2.0);
        let lens = disc_disc_overlap_area(&big, &small);
        assert!((lens - small.area()).abs() < 1e-9);
    }

    #[test]
    fn overlap_identical_is_full_area() {
        let a = Disc::new(Point2::new(3.0, 3.0), 7.0);
        assert!((disc_disc_overlap_area(&a, &a) - a.area()).abs() < 1e-9);
    }

    #[test]
    fn overlap_half_shifted_known_value() {
        // Two unit discs at distance 1: lens area = 2*acos(1/2) - sqrt(3)/2.
        let a = Disc::new(Point2::ORIGIN, 1.0);
        let b = Disc::new(Point2::new(1.0, 0.0), 1.0);
        let expected = 2.0 * (0.5f64).acos() - (3.0f64).sqrt() / 2.0;
        assert!((disc_disc_overlap_area(&a, &b) - expected).abs() < 1e-12);
    }

    #[test]
    fn overlap_is_symmetric_and_bounded() {
        let a = Disc::new(Point2::ORIGIN, 4.0);
        let b = Disc::new(Point2::new(3.0, 1.0), 6.0);
        let ab = disc_disc_overlap_area(&a, &b);
        let ba = disc_disc_overlap_area(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab <= a.area().min(b.area()) + 1e-12);
        assert!(ab > 0.0);
    }
}
