//! Axis-aligned bounding boxes over the ground plane.

use crate::Point2;

/// An axis-aligned rectangle `[min.x, max.x] x [min.y, max.y]` in metres.
///
/// Used to describe the monitoring region and to clip grid/coverage queries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb {
    /// Lower-left corner.
    pub min: Point2,
    /// Upper-right corner.
    pub max: Point2,
}

impl Aabb {
    /// Creates a box from two opposite corners, normalising the ordering so
    /// that `min` is component-wise below `max`.
    pub fn new(a: Point2, b: Point2) -> Self {
        Aabb {
            min: Point2::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point2::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The square `[0, side] x [0, side]` — the paper's monitoring region
    /// shape (1000 m x 1000 m by default).
    pub fn square(side: f64) -> Self {
        Aabb::new(Point2::ORIGIN, Point2::new(side, side))
    }

    /// Smallest box containing every point of `pts`.
    ///
    /// Returns `None` for an empty slice.
    pub fn from_points(pts: &[Point2]) -> Option<Self> {
        let first = *pts.first()?;
        let mut b = Aabb {
            min: first,
            max: first,
        };
        for &p in &pts[1..] {
            b.expand_to(p);
        }
        Some(b)
    }

    /// Grows the box (if needed) to contain `p`.
    pub fn expand_to(&mut self, p: Point2) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Returns a copy grown outward by `margin` on every side.
    pub fn inflated(self, margin: f64) -> Self {
        Aabb {
            min: Point2::new(self.min.x - margin, self.min.y - margin),
            max: Point2::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// Box width along x, in metres.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Box height along y, in metres.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Geometric centre of the box.
    #[inline]
    pub fn center(&self) -> Point2 {
        self.min.midpoint(self.max)
    }

    /// Area in square metres.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// True when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True when the two boxes share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Distance from `p` to the closest point of the box (zero if inside).
    pub fn distance_to_point(&self, p: Point2) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalises_corners() {
        let b = Aabb::new(Point2::new(5.0, -1.0), Point2::new(-2.0, 3.0));
        assert_eq!(b.min, Point2::new(-2.0, -1.0));
        assert_eq!(b.max, Point2::new(5.0, 3.0));
    }

    #[test]
    fn square_region() {
        let b = Aabb::square(1000.0);
        assert_eq!(b.width(), 1000.0);
        assert_eq!(b.height(), 1000.0);
        assert_eq!(b.area(), 1e6);
        assert_eq!(b.center(), Point2::new(500.0, 500.0));
    }

    #[test]
    fn from_points_bounds_everything() {
        let pts = [
            Point2::new(1.0, 9.0),
            Point2::new(-3.0, 2.0),
            Point2::new(4.0, -7.0),
        ];
        let b = Aabb::from_points(&pts).unwrap();
        for &p in &pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min, Point2::new(-3.0, -7.0));
        assert_eq!(b.max, Point2::new(4.0, 9.0));
        assert!(Aabb::from_points(&[]).is_none());
    }

    #[test]
    fn containment_is_inclusive_on_boundary() {
        let b = Aabb::square(10.0);
        assert!(b.contains(Point2::new(0.0, 0.0)));
        assert!(b.contains(Point2::new(10.0, 10.0)));
        assert!(!b.contains(Point2::new(10.0001, 5.0)));
    }

    #[test]
    fn intersection_detection() {
        let a = Aabb::square(10.0);
        let b = Aabb::new(Point2::new(9.0, 9.0), Point2::new(20.0, 20.0));
        let c = Aabb::new(Point2::new(11.0, 11.0), Point2::new(20.0, 20.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn point_distance_zero_inside_positive_outside() {
        let b = Aabb::square(10.0);
        assert_eq!(b.distance_to_point(Point2::new(5.0, 5.0)), 0.0);
        assert_eq!(b.distance_to_point(Point2::new(13.0, 14.0)), 5.0);
    }

    #[test]
    fn inflation_adds_margin() {
        let b = Aabb::square(10.0).inflated(2.0);
        assert_eq!(b.min, Point2::new(-2.0, -2.0));
        assert_eq!(b.max, Point2::new(12.0, 12.0));
    }
}
