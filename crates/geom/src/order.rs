//! NaN-safe total ordering for `f64`.
//!
//! The planners' invariants (energy feasibility, metric closure of the
//! auxiliary graph, data conservation) are maintained through dozens of
//! float sorts and argmin/argmax scans. A single NaN reaching a
//! `partial_cmp().unwrap()` comparator panics mid-tour; worse, a NaN
//! reaching a *non*-panicking comparator silently produces an
//! inconsistent order and corrupts the invariant it feeds. This module
//! is the one approved way to order floats in the workspace: the
//! `uavdc-lint` rule `float-ord` flags every comparator outside it.
//!
//! All helpers use [`f64::total_cmp`] (IEEE 754 `totalOrder`): NaN
//! sorts after `+inf` ascending (before `-inf` descending), so a NaN
//! produced by an upstream bug lands at the *pessimal* end of every
//! ordering — it is never selected as a best candidate and never
//! truncates a sort — instead of panicking or scrambling the order.

use std::cmp::Ordering;

/// Total-order comparison, ascending. Drop-in replacement for
/// `a.partial_cmp(&b).unwrap()` in `sort_by`/`min_by`/`max_by`.
#[inline]
pub fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

/// Total-order comparison, descending ("largest first"), with NaN
/// pinned to the *end* of the order. A plain argument swap
/// (`b.total_cmp(&a)`) would rank NaN above `+inf` and hand it first
/// place in every best-candidate scan; instead NaN stays pessimal in
/// both directions.
#[inline]
pub fn cmp_f64_desc(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
}

/// An `f64` wrapper that is `Ord`/`Eq` under the IEEE 754 total order,
/// for use as a sort key (`sort_by_key`), in `BinaryHeap`s, or inside
/// `Ord`-requiring containers.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TotalF64(pub f64);

impl TotalF64 {
    /// The wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for TotalF64 {
    #[inline]
    fn from(v: f64) -> Self {
        TotalF64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_and_descending_agree_on_finite_values() {
        let mut v = vec![3.0, -1.0, 2.5, 0.0];
        v.sort_by(|a, b| cmp_f64(*a, *b));
        assert_eq!(v, vec![-1.0, 0.0, 2.5, 3.0]);
        v.sort_by(|a, b| cmp_f64_desc(*a, *b));
        assert_eq!(v, vec![3.0, 2.5, 0.0, -1.0]);
    }

    #[test]
    fn nan_sorts_to_the_pessimal_end_without_panicking() {
        let mut v = [1.0, f64::NAN, -2.0, f64::INFINITY];
        v.sort_by(|a, b| cmp_f64(*a, *b));
        assert_eq!(v[0], -2.0);
        assert!(v[3].is_nan(), "ascending: NaN lands last");
        v.sort_by(|a, b| cmp_f64_desc(*a, *b));
        assert!(v[3].is_nan(), "descending: NaN lands last");
        assert_eq!(v[0], f64::INFINITY);
    }

    #[test]
    fn total_f64_is_a_lawful_ord_key() {
        let mut v = [TotalF64(2.0), TotalF64(f64::NAN), TotalF64(-1.0)];
        v.sort();
        assert_eq!(v[0].get(), -1.0);
        assert_eq!(v[1].get(), 2.0);
        assert!(v[2].get().is_nan());
        let min = v.iter().min().expect("non-empty");
        assert_eq!(min.get(), -1.0);
    }
}
