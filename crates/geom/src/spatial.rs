//! Uniform-grid spatial index over a fixed point set.
//!
//! Coverage-set computation (`C(s_j)` for every candidate hovering location)
//! is the hottest geometric operation in the planners: with `δ = 5 m` and
//! 500 sensors there are ~40 000 candidate locations, each needing an
//! "all sensors within `R0`" query. A flat bucket grid answers these in
//! expected O(k) per query.

use crate::{Aabb, Point2};

/// A spatial index of a fixed slice of points, bucketed on a uniform grid.
///
/// Point identity is positional: queries return indices into the slice the
/// index was built from.
#[derive(Clone, Debug)]
pub struct SpatialGrid {
    points: Vec<Point2>,
    origin: Point2,
    cell: f64,
    nx: i64,
    ny: i64,
    /// CSR-style layout: `starts[b]..starts[b+1]` slices `entries` for bucket `b`.
    starts: Vec<u32>,
    entries: Vec<u32>,
}

impl SpatialGrid {
    /// Builds an index over `points` with the given bucket edge length.
    ///
    /// `cell` should be on the order of the typical query radius; the
    /// planners use `R0`. Empty point sets are allowed.
    ///
    /// # Panics
    /// Panics when `cell` is non-positive/non-finite or any point is not
    /// finite.
    pub fn build(points: &[Point2], cell: f64) -> Self {
        assert!(
            cell.is_finite() && cell > 0.0,
            "bucket size must be positive, got {cell}"
        );
        for (i, p) in points.iter().enumerate() {
            assert!(p.is_finite(), "point {i} is not finite: {p:?}");
        }
        let bounds = Aabb::from_points(points)
            .unwrap_or_else(|| Aabb::new(Point2::ORIGIN, Point2::new(cell, cell)));
        let origin = bounds.min;
        let nx = ((bounds.width() / cell).floor() as i64 + 1).max(1);
        let ny = ((bounds.height() / cell).floor() as i64 + 1).max(1);
        let nbuckets = (nx * ny) as usize;

        // Counting sort of points into buckets (CSR construction).
        let bucket_of = |p: Point2| -> usize {
            let bx = (((p.x - origin.x) / cell).floor() as i64).clamp(0, nx - 1);
            let by = (((p.y - origin.y) / cell).floor() as i64).clamp(0, ny - 1);
            (by * nx + bx) as usize
        };
        let mut counts = vec![0u32; nbuckets + 1];
        for &p in points {
            counts[bucket_of(p) + 1] += 1;
        }
        for b in 0..nbuckets {
            counts[b + 1] += counts[b];
        }
        let starts = counts.clone();
        let mut cursor = counts;
        let mut entries = vec![0u32; points.len()];
        for (i, &p) in points.iter().enumerate() {
            let b = bucket_of(p);
            entries[cursor[b] as usize] = i as u32;
            cursor[b] += 1;
        }

        SpatialGrid {
            points: points.to_vec(),
            origin,
            cell,
            nx,
            ny,
            starts,
            entries,
        }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed points, in build order.
    #[inline]
    pub fn points(&self) -> &[Point2] {
        &self.points
    }

    /// Indices of all points within (closed) distance `radius` of `q`.
    pub fn query_radius(&self, q: Point2, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.query_radius_into(q, radius, &mut out);
        out
    }

    /// As [`SpatialGrid::query_radius`], appending into `out` (cleared
    /// first) to let hot loops reuse the allocation.
    pub fn query_radius_into(&self, q: Point2, radius: f64, out: &mut Vec<usize>) {
        out.clear();
        if self.points.is_empty() || !radius.is_finite() || radius < 0.0 {
            return;
        }
        let r2 = radius * radius;
        let lo_x =
            (((q.x - radius - self.origin.x) / self.cell).floor() as i64).clamp(0, self.nx - 1);
        let hi_x =
            (((q.x + radius - self.origin.x) / self.cell).floor() as i64).clamp(0, self.nx - 1);
        let lo_y =
            (((q.y - radius - self.origin.y) / self.cell).floor() as i64).clamp(0, self.ny - 1);
        let hi_y =
            (((q.y + radius - self.origin.y) / self.cell).floor() as i64).clamp(0, self.ny - 1);
        for by in lo_y..=hi_y {
            for bx in lo_x..=hi_x {
                let b = (by * self.nx + bx) as usize;
                let s = self.starts[b] as usize;
                let e = self.starts[b + 1] as usize;
                for &i in &self.entries[s..e] {
                    if self.points[i as usize].distance_sq(q) <= r2 {
                        out.push(i as usize);
                    }
                }
            }
        }
    }

    /// Number of points within distance `radius` of `q` (no allocation).
    pub fn count_within(&self, q: Point2, radius: f64) -> usize {
        if self.points.is_empty() || !radius.is_finite() || radius < 0.0 {
            return 0;
        }
        let r2 = radius * radius;
        let lo_x =
            (((q.x - radius - self.origin.x) / self.cell).floor() as i64).clamp(0, self.nx - 1);
        let hi_x =
            (((q.x + radius - self.origin.x) / self.cell).floor() as i64).clamp(0, self.nx - 1);
        let lo_y =
            (((q.y - radius - self.origin.y) / self.cell).floor() as i64).clamp(0, self.ny - 1);
        let hi_y =
            (((q.y + radius - self.origin.y) / self.cell).floor() as i64).clamp(0, self.ny - 1);
        let mut n = 0;
        for by in lo_y..=hi_y {
            for bx in lo_x..=hi_x {
                let b = (by * self.nx + bx) as usize;
                let s = self.starts[b] as usize;
                let e = self.starts[b + 1] as usize;
                n += self.entries[s..e]
                    .iter()
                    .filter(|&&i| self.points[i as usize].distance_sq(q) <= r2)
                    .count();
            }
        }
        n
    }

    /// Index of the point nearest to `q`, or `None` when empty.
    ///
    /// Expands the bucket search ring by ring, so typical cost is O(1) for
    /// well-distributed points.
    pub fn nearest(&self, q: Point2) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let qbx = (((q.x - self.origin.x) / self.cell).floor() as i64).clamp(0, self.nx - 1);
        let qby = (((q.y - self.origin.y) / self.cell).floor() as i64).clamp(0, self.ny - 1);
        let mut best: Option<(usize, f64)> = None;
        let max_ring = self.nx.max(self.ny);
        for ring in 0..=max_ring {
            // Once a candidate is found, one extra ring suffices for
            // correctness (points in further rings are at least
            // (ring-1)*cell away from q).
            if let Some((_, d2)) = best {
                let safe = (ring - 1).max(0) as f64 * self.cell;
                if safe * safe > d2 {
                    break;
                }
            }
            let lo_x = (qbx - ring).max(0);
            let hi_x = (qbx + ring).min(self.nx - 1);
            let lo_y = (qby - ring).max(0);
            let hi_y = (qby + ring).min(self.ny - 1);
            for by in lo_y..=hi_y {
                for bx in lo_x..=hi_x {
                    // Only the ring boundary is new.
                    if ring > 0
                        && bx != lo_x
                        && bx != hi_x
                        && by != lo_y
                        && by != hi_y
                        && (qbx - bx).abs() < ring
                        && (qby - by).abs() < ring
                    {
                        continue;
                    }
                    let b = (by * self.nx + bx) as usize;
                    let s = self.starts[b] as usize;
                    let e = self.starts[b + 1] as usize;
                    for &i in &self.entries[s..e] {
                        let d2 = self.points[i as usize].distance_sq(q);
                        if best.is_none_or(|(_, bd)| d2 < bd) {
                            best = Some((i as usize, d2));
                        }
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn brute_radius(points: &[Point2], q: Point2, r: f64) -> Vec<usize> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance_sq(q) <= r * r)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn empty_index_behaves() {
        let g = SpatialGrid::build(&[], 10.0);
        assert!(g.is_empty());
        assert!(g.query_radius(Point2::ORIGIN, 100.0).is_empty());
        assert_eq!(g.count_within(Point2::ORIGIN, 100.0), 0);
        assert_eq!(g.nearest(Point2::ORIGIN), None);
    }

    #[test]
    fn single_point() {
        let g = SpatialGrid::build(&[Point2::new(3.0, 4.0)], 10.0);
        assert_eq!(g.query_radius(Point2::ORIGIN, 5.0), vec![0]);
        assert!(g.query_radius(Point2::ORIGIN, 4.99).is_empty());
        assert_eq!(g.nearest(Point2::new(100.0, 100.0)), Some(0));
    }

    #[test]
    fn radius_query_matches_brute_force_on_grid_cluster() {
        let mut pts = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                pts.push(Point2::new(i as f64 * 7.0, j as f64 * 7.0));
            }
        }
        let g = SpatialGrid::build(&pts, 15.0);
        for &(qx, qy, r) in &[
            (70.0, 70.0, 20.0),
            (0.0, 0.0, 50.0),
            (133.0, 1.0, 7.0),
            (60.0, 60.0, 0.0),
        ] {
            let q = Point2::new(qx, qy);
            let mut got = g.query_radius(q, r);
            let mut want = brute_radius(&pts, q, r);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "query ({qx},{qy}) r={r}");
        }
    }

    #[test]
    fn count_matches_query_len() {
        let pts: Vec<Point2> = (0..100)
            .map(|i| Point2::new((i * 37 % 100) as f64, (i * 61 % 100) as f64))
            .collect();
        let g = SpatialGrid::build(&pts, 10.0);
        for r in [0.0, 5.0, 25.0, 200.0] {
            let q = Point2::new(50.0, 50.0);
            assert_eq!(g.count_within(q, r), g.query_radius(q, r).len());
        }
    }

    #[test]
    fn negative_or_nan_radius_is_empty() {
        let g = SpatialGrid::build(&[Point2::ORIGIN], 1.0);
        assert!(g.query_radius(Point2::ORIGIN, -1.0).is_empty());
        assert!(g.query_radius(Point2::ORIGIN, f64::NAN).is_empty());
    }

    #[test]
    #[should_panic(expected = "not finite")]
    fn non_finite_point_panics() {
        let _ = SpatialGrid::build(&[Point2::new(f64::NAN, 0.0)], 1.0);
    }

    #[test]
    fn nearest_finds_true_nearest() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(10.0, 10.0),
            Point2::new(0.0, 10.0),
            Point2::new(4.0, 6.0),
        ];
        let g = SpatialGrid::build(&pts, 3.0);
        assert_eq!(g.nearest(Point2::new(4.5, 5.5)), Some(4));
        assert_eq!(g.nearest(Point2::new(-100.0, -100.0)), Some(0));
        assert_eq!(g.nearest(Point2::new(11.0, 9.0)), Some(2));
    }

    proptest! {
        #[test]
        fn prop_radius_query_matches_brute_force(
            pts in proptest::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 0..120),
            qx in -100.0f64..1100.0,
            qy in -100.0f64..1100.0,
            r in 0.0f64..400.0,
            cell in 1.0f64..200.0,
        ) {
            let points: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let g = SpatialGrid::build(&points, cell);
            let q = Point2::new(qx, qy);
            let mut got = g.query_radius(q, r);
            let mut want = brute_radius(&points, q, r);
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn prop_nearest_matches_brute_force(
            pts in proptest::collection::vec((0.0f64..500.0, 0.0f64..500.0), 1..80),
            qx in -50.0f64..550.0,
            qy in -50.0f64..550.0,
        ) {
            let points: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let g = SpatialGrid::build(&points, 37.0);
            let q = Point2::new(qx, qy);
            let got = g.nearest(q).unwrap();
            let best = points
                .iter()
                .map(|p| p.distance_sq(q))
                .fold(f64::INFINITY, f64::min);
            // Ties allowed: the returned point must be at the minimum distance.
            prop_assert!((points[got].distance_sq(q) - best).abs() < 1e-9);
        }
    }
}
