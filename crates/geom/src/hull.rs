//! Convex hulls (Andrew's monotone chain).

use crate::Point2;

/// Indices of the convex hull of `points`, counter-clockwise, starting
/// from the lexicographically smallest point. Collinear boundary points
/// are excluded (strict hull). Returns all input indices (in order) when
/// fewer than three points are given.
///
/// The hull order is a useful TSP seed: in an optimal Euclidean tour the
/// hull vertices appear in exactly this cyclic order, so constructions
/// seeded with the hull (see `uavdc-graph`'s `cheapest_insertion_from`)
/// never get the boundary wrong.
pub fn convex_hull(points: &[Point2]) -> Vec<usize> {
    let n = points.len();
    if n < 3 {
        return (0..n).collect();
    }
    for (i, p) in points.iter().enumerate() {
        assert!(p.is_finite(), "point {i} is not finite: {p:?}");
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        crate::cmp_f64(points[a].x, points[b].x).then(crate::cmp_f64(points[a].y, points[b].y))
    });
    let cross = |o: usize, a: usize, b: usize| -> f64 {
        let (po, pa, pb) = (points[o], points[a], points[b]);
        (pa.x - po.x) * (pb.y - po.y) - (pa.y - po.y) * (pb.x - po.x)
    };
    // Lower hull.
    let mut hull: Vec<usize> = Vec::with_capacity(2 * n);
    for &i in &order {
        while hull.len() >= 2 && cross(hull[hull.len() - 2], hull[hull.len() - 1], i) <= 1e-12 {
            hull.pop();
        }
        hull.push(i);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &i in order.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && cross(hull[hull.len() - 2], hull[hull.len() - 1], i) <= 1e-12
        {
            hull.pop();
        }
        hull.push(i);
    }
    hull.pop(); // last point equals the first
    hull
}

/// Signed area (shoelace) of the polygon visiting `points[order]` in
/// sequence; positive for counter-clockwise order.
pub fn polygon_area(points: &[Point2], order: &[usize]) -> f64 {
    if order.len() < 3 {
        return 0.0;
    }
    let mut twice = 0.0;
    for k in 0..order.len() {
        let a = points[order[k]];
        let b = points[order[(k + 1) % order.len()]];
        twice += a.x * b.y - b.x * a.y;
    }
    twice / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[p(1.0, 1.0)]), vec![0]);
        assert_eq!(convex_hull(&[p(0.0, 0.0), p(1.0, 0.0)]), vec![0, 1]);
    }

    #[test]
    fn square_with_interior_point() {
        let pts = [
            p(0.0, 0.0),
            p(10.0, 0.0),
            p(10.0, 10.0),
            p(0.0, 10.0),
            p(5.0, 5.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert!(!hull.contains(&4), "interior point on hull");
        // Counter-clockwise: positive area.
        assert!(polygon_area(&pts, &hull) > 0.0);
        assert!((polygon_area(&pts, &hull) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn collinear_points_excluded() {
        let pts = [p(0.0, 0.0), p(5.0, 0.0), p(10.0, 0.0), p(5.0, 5.0)];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 3);
        assert!(!hull.contains(&1), "collinear midpoint kept");
    }

    #[test]
    fn starts_at_lexicographic_minimum() {
        let pts = [p(5.0, 5.0), p(0.0, 0.0), p(10.0, 0.0), p(5.0, 9.0)];
        let hull = convex_hull(&pts);
        assert_eq!(hull[0], 1);
    }

    proptest! {
        #[test]
        fn prop_hull_contains_all_points(
            raw in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 3..60),
        ) {
            let pts: Vec<Point2> = raw.iter().map(|&(x, y)| p(x, y)).collect();
            let hull = convex_hull(&pts);
            prop_assume!(hull.len() >= 3);
            // Every point lies inside or on the hull: cross products with
            // every CCW edge are >= 0 (within tolerance).
            for (qi, q) in pts.iter().enumerate() {
                for k in 0..hull.len() {
                    let a = pts[hull[k]];
                    let b = pts[hull[(k + 1) % hull.len()]];
                    let cr = (b.x - a.x) * (q.y - a.y) - (b.y - a.y) * (q.x - a.x);
                    prop_assert!(cr >= -1e-6, "point {qi} outside hull edge {k}: {cr}");
                }
            }
            // Hull vertices are distinct.
            let mut sorted = hull.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), hull.len());
        }

        #[test]
        fn prop_hull_area_is_maximal_polygon(
            raw in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 3..25),
        ) {
            let pts: Vec<Point2> = raw.iter().map(|&(x, y)| p(x, y)).collect();
            let hull = convex_hull(&pts);
            prop_assume!(hull.len() >= 3);
            let hull_area = polygon_area(&pts, &hull);
            prop_assert!(hull_area >= -1e-9, "hull not CCW");
        }
    }
}
