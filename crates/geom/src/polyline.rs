//! Path/tour length helpers and pairwise distance matrices.

use crate::Point2;

/// Total length of the open polyline through `pts`, in metres.
///
/// Returns `0.0` for fewer than two points.
pub fn path_length(pts: &[Point2]) -> f64 {
    pts.windows(2).map(|w| w[0].distance(w[1])).sum()
}

/// Total length of the closed tour through `pts` (returning to the first
/// point), in metres.
///
/// Returns `0.0` for fewer than two points — a tour over one location does
/// not move the UAV.
pub fn tour_length(pts: &[Point2]) -> f64 {
    if pts.len() < 2 {
        return 0.0;
    }
    path_length(pts) + pts[pts.len() - 1].distance(pts[0])
}

/// Dense symmetric Euclidean distance matrix over `pts`, row-major.
///
/// `result[i * n + j]` is the distance between points `i` and `j`. Used to
/// feed the metric-graph algorithms in `uavdc-graph`.
pub fn distance_matrix(pts: &[Point2]) -> Vec<f64> {
    let n = pts.len();
    let mut m = vec![0.0; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = pts[i].distance(pts[j]);
            m[i * n + j] = d;
            m[j * n + i] = d;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_paths_have_zero_length() {
        assert_eq!(path_length(&[]), 0.0);
        assert_eq!(path_length(&[Point2::ORIGIN]), 0.0);
        assert_eq!(tour_length(&[]), 0.0);
        assert_eq!(tour_length(&[Point2::new(5.0, 5.0)]), 0.0);
    }

    #[test]
    fn unit_square_tour() {
        let square = [
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ];
        assert_eq!(path_length(&square), 3.0);
        assert_eq!(tour_length(&square), 4.0);
    }

    #[test]
    fn two_point_tour_is_out_and_back() {
        let pts = [Point2::ORIGIN, Point2::new(7.0, 0.0)];
        assert_eq!(path_length(&pts), 7.0);
        assert_eq!(tour_length(&pts), 14.0);
    }

    #[test]
    fn distance_matrix_is_symmetric_with_zero_diagonal() {
        let pts = [
            Point2::new(0.0, 0.0),
            Point2::new(3.0, 4.0),
            Point2::new(-1.0, 1.0),
        ];
        let m = distance_matrix(&pts);
        let n = pts.len();
        for i in 0..n {
            assert_eq!(m[i * n + i], 0.0);
            for j in 0..n {
                assert_eq!(m[i * n + j], m[j * n + i]);
                assert_eq!(m[i * n + j], pts[i].distance(pts[j]));
            }
        }
    }
}
