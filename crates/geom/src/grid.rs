//! The paper's square grid partition of the monitoring region.
//!
//! Section IV partitions the hovering region into `M` squares of edge
//! length `δ`; the UAV may only hover at square centres. [`GridSpec`]
//! materialises that partition and provides cell↔coordinate mappings.

use crate::{Aabb, Point2};

/// Identifier of a grid cell: the pair of column/row indices.
///
/// Cells are addressed as `(ix, iy)` with `ix` along x (columns) and `iy`
/// along y (rows); the linear index is `iy * nx + ix`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId {
    /// Column index, `0..nx`.
    pub ix: u32,
    /// Row index, `0..ny`.
    pub iy: u32,
}

/// A uniform square grid partition of a rectangular region.
///
/// The last column/row may extend past the region edge when the side length
/// is not an exact multiple of `delta` (the partition covers the region).
#[derive(Clone, Debug)]
pub struct GridSpec {
    origin: Point2,
    delta: f64,
    nx: u32,
    ny: u32,
}

impl GridSpec {
    /// Builds the partition of the `width` x `height` region anchored at
    /// `origin` into squares of edge `delta`.
    ///
    /// # Panics
    /// Panics when `delta`, `width` or `height` is non-positive or
    /// non-finite.
    pub fn new(origin: Point2, width: f64, height: f64, delta: f64) -> Self {
        assert!(
            delta.is_finite() && delta > 0.0,
            "delta must be positive, got {delta}"
        );
        assert!(
            width.is_finite() && width > 0.0,
            "width must be positive, got {width}"
        );
        assert!(
            height.is_finite() && height > 0.0,
            "height must be positive, got {height}"
        );
        let nx = (width / delta).ceil() as u32;
        let ny = (height / delta).ceil() as u32;
        GridSpec {
            origin,
            delta,
            nx: nx.max(1),
            ny: ny.max(1),
        }
    }

    /// Builds the partition of a bounding region.
    pub fn for_region(region: &Aabb, delta: f64) -> Self {
        GridSpec::new(region.min, region.width(), region.height(), delta)
    }

    /// Cell edge length `δ` in metres.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of columns.
    #[inline]
    pub fn nx(&self) -> u32 {
        self.nx
    }

    /// Number of rows.
    #[inline]
    pub fn ny(&self) -> u32 {
        self.ny
    }

    /// Total number of cells `M = nx * ny`.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.nx as usize * self.ny as usize
    }

    /// Cell id from column/row indices.
    ///
    /// # Panics
    /// Panics when the indices are out of range.
    pub fn cell_at(&self, ix: u32, iy: u32) -> CellId {
        assert!(
            ix < self.nx && iy < self.ny,
            "cell ({ix},{iy}) out of {}x{} grid",
            self.nx,
            self.ny
        );
        CellId { ix, iy }
    }

    /// Linear index of a cell in row-major order, for use as a `Vec` index.
    #[inline]
    pub fn linear_index(&self, c: CellId) -> usize {
        c.iy as usize * self.nx as usize + c.ix as usize
    }

    /// Inverse of [`GridSpec::linear_index`].
    #[inline]
    pub fn cell_from_linear(&self, idx: usize) -> CellId {
        debug_assert!(idx < self.num_cells());
        CellId {
            ix: (idx % self.nx as usize) as u32,
            iy: (idx / self.nx as usize) as u32,
        }
    }

    /// Centre of a cell — a potential hovering location (projected).
    #[inline]
    pub fn cell_center(&self, c: CellId) -> Point2 {
        Point2::new(
            self.origin.x + (c.ix as f64 + 0.5) * self.delta,
            self.origin.y + (c.iy as f64 + 0.5) * self.delta,
        )
    }

    /// The cell containing ground point `p`, clamped to the grid bounds.
    ///
    /// Points on a shared edge belong to the higher-index cell, matching
    /// half-open cell intervals `[k·δ, (k+1)·δ)`.
    pub fn cell_containing(&self, p: Point2) -> CellId {
        let fx = ((p.x - self.origin.x) / self.delta).floor();
        let fy = ((p.y - self.origin.y) / self.delta).floor();
        let ix = fx.clamp(0.0, (self.nx - 1) as f64) as u32;
        let iy = fy.clamp(0.0, (self.ny - 1) as f64) as u32;
        CellId { ix, iy }
    }

    /// Iterates all cell ids in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.ny).flat_map(move |iy| (0..self.nx).map(move |ix| CellId { ix, iy }))
    }

    /// Cells whose *centre* lies within distance `radius` of `p`.
    ///
    /// This enumerates the candidate hovering locations that can cover a
    /// sensor at `p` with coverage radius `radius` — the set the paper
    /// bounds by `⌈π·R0²/δ²⌉` per sensor.
    pub fn cells_with_center_within(&self, p: Point2, radius: f64) -> Vec<CellId> {
        let mut out = Vec::new();
        // Conservative index window around p.
        let lo_x = ((p.x - radius - self.origin.x) / self.delta - 1.0)
            .floor()
            .max(0.0) as u32;
        let lo_y = ((p.y - radius - self.origin.y) / self.delta - 1.0)
            .floor()
            .max(0.0) as u32;
        let hi_x = (((p.x + radius - self.origin.x) / self.delta).ceil() as i64)
            .clamp(0, self.nx as i64 - 1) as u32;
        let hi_y = (((p.y + radius - self.origin.y) / self.delta).ceil() as i64)
            .clamp(0, self.ny as i64 - 1) as u32;
        let r2 = radius * radius;
        for iy in lo_y..=hi_y {
            for ix in lo_x..=hi_x {
                let c = CellId { ix, iy };
                if self.cell_center(c).distance_sq(p) <= r2 {
                    out.push(c);
                }
            }
        }
        out
    }

    /// Bounding box of the whole grid (may exceed the requested region when
    /// the side is not a multiple of `delta`).
    pub fn bounds(&self) -> Aabb {
        Aabb::new(
            self.origin,
            Point2::new(
                self.origin.x + self.nx as f64 * self.delta,
                self.origin.y + self.ny as f64 * self.delta,
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_100x100_d10() -> GridSpec {
        GridSpec::new(Point2::ORIGIN, 100.0, 100.0, 10.0)
    }

    #[test]
    fn cell_counts() {
        let g = grid_100x100_d10();
        assert_eq!(g.nx(), 10);
        assert_eq!(g.ny(), 10);
        assert_eq!(g.num_cells(), 100);
    }

    #[test]
    fn non_divisible_side_rounds_up() {
        let g = GridSpec::new(Point2::ORIGIN, 105.0, 95.0, 10.0);
        assert_eq!(g.nx(), 11);
        assert_eq!(g.ny(), 10);
        assert!(g.bounds().contains(Point2::new(104.9, 94.9)));
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn zero_delta_panics() {
        let _ = GridSpec::new(Point2::ORIGIN, 10.0, 10.0, 0.0);
    }

    #[test]
    fn centers_are_cell_midpoints() {
        let g = grid_100x100_d10();
        assert_eq!(g.cell_center(g.cell_at(0, 0)), Point2::new(5.0, 5.0));
        assert_eq!(g.cell_center(g.cell_at(9, 9)), Point2::new(95.0, 95.0));
        assert_eq!(g.cell_center(g.cell_at(3, 7)), Point2::new(35.0, 75.0));
    }

    #[test]
    fn containing_cell_roundtrips_center() {
        let g = grid_100x100_d10();
        for c in g.cells() {
            assert_eq!(g.cell_containing(g.cell_center(c)), c);
        }
    }

    #[test]
    fn containing_cell_clamps_outside_points() {
        let g = grid_100x100_d10();
        assert_eq!(g.cell_containing(Point2::new(-5.0, -5.0)), g.cell_at(0, 0));
        assert_eq!(
            g.cell_containing(Point2::new(500.0, 500.0)),
            g.cell_at(9, 9)
        );
    }

    #[test]
    fn linear_index_roundtrip() {
        let g = GridSpec::new(Point2::ORIGIN, 70.0, 30.0, 10.0);
        for c in g.cells() {
            assert_eq!(g.cell_from_linear(g.linear_index(c)), c);
        }
        assert_eq!(g.linear_index(g.cell_at(0, 0)), 0);
        assert_eq!(g.linear_index(g.cell_at(6, 2)), 2 * 7 + 6);
    }

    #[test]
    fn cells_within_radius_cover_sensor() {
        let g = grid_100x100_d10();
        let sensor = Point2::new(50.0, 50.0);
        let cells = g.cells_with_center_within(sensor, 15.0);
        // Every returned center is within the radius...
        for c in &cells {
            assert!(g.cell_center(*c).distance(sensor) <= 15.0);
        }
        // ...and no non-returned cell center is.
        let returned: std::collections::HashSet<_> = cells.iter().copied().collect();
        for c in g.cells() {
            if g.cell_center(c).distance(sensor) <= 15.0 {
                assert!(returned.contains(&c), "missing cell {c:?}");
            }
        }
        assert!(!cells.is_empty());
    }

    #[test]
    fn cells_within_radius_near_border() {
        let g = grid_100x100_d10();
        let cells = g.cells_with_center_within(Point2::new(1.0, 1.0), 12.0);
        assert!(cells.contains(&g.cell_at(0, 0)));
        for c in &cells {
            assert!(c.ix < g.nx() && c.iy < g.ny());
        }
    }

    #[test]
    fn paper_bound_on_candidate_count_holds() {
        // |cells covering one sensor| <= π R0²/δ² + O(perimeter), check the
        // asymptotic bound with slack for boundary cells.
        let g = GridSpec::new(Point2::ORIGIN, 1000.0, 1000.0, 5.0);
        let r0 = 50.0;
        let cells = g.cells_with_center_within(Point2::new(500.0, 500.0), r0);
        let area_bound = std::f64::consts::PI * r0 * r0 / (5.0 * 5.0);
        assert!((cells.len() as f64) <= area_bound * 1.2 + 16.0);
        assert!((cells.len() as f64) >= area_bound * 0.8);
    }
}
