//! Planar geometry substrate for UAV data-collection planning.
//!
//! This crate provides the geometric primitives needed by the planners in
//! `uavdc-core`: 2-D/3-D points, axis-aligned bounding boxes, the square
//! grid partition of the monitoring region (the paper's `δ`-squares), disc
//! coverage predicates (the UAV's hovering coverage circle of radius `R0`),
//! and a uniform-grid spatial index for fast "all sensors within radius `r`
//! of a hovering location" queries.
//!
//! Everything here is deterministic and allocation-conscious: queries write
//! into caller-provided buffers where it matters, and the spatial index is a
//! flat bucket grid (no per-node boxing).
//!
//! # Example
//!
//! ```
//! use uavdc_geom::{Point2, GridSpec, SpatialGrid};
//!
//! // A 100 m x 100 m region partitioned into 10 m squares.
//! let grid = GridSpec::new(Point2::new(0.0, 0.0), 100.0, 100.0, 10.0);
//! assert_eq!(grid.num_cells(), 100);
//!
//! // Index a few sensor positions and query coverage of a cell center.
//! let sensors = vec![Point2::new(12.0, 13.0), Point2::new(95.0, 95.0)];
//! let index = SpatialGrid::build(&sensors, 10.0);
//! let covered = index.query_radius(grid.cell_center(grid.cell_at(1, 1)), 15.0);
//! assert_eq!(covered, vec![0]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod aabb;
mod disc;
mod grid;
mod hull;
mod kdtree;
mod order;
mod point;
mod polyline;
mod spatial;

pub use aabb::Aabb;
pub use disc::{disc_disc_overlap_area, Disc};
pub use grid::{CellId, GridSpec};
pub use hull::{convex_hull, polygon_area};
pub use kdtree::KdTree;
pub use order::{cmp_f64, cmp_f64_desc, TotalF64};
pub use point::{Point2, Point3};
pub use polyline::{distance_matrix, path_length, tour_length};
pub use spatial::SpatialGrid;

/// Numerical tolerance used by approximate geometric comparisons in this
/// crate (metres, for the paper's units).
pub const EPS: f64 = 1e-9;

/// Returns true when `a` and `b` differ by at most [`EPS`] in absolute value.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}
