//! A 2-D kd-tree over a fixed point set.
//!
//! Complements [`crate::SpatialGrid`]: the bucket grid wins on uniform
//! densities and pure radius queries (the planners' hot path), while the
//! kd-tree is robust to highly skewed densities (clustered deployments)
//! and adds k-nearest-neighbour queries. The `substrates` bench compares
//! the two.
//!
//! The tree is built once over median splits (O(n log n)) and stored as a
//! flat array — no per-node allocation, no unsafe.

use crate::Point2;

/// Flat-array 2-D kd-tree.
#[derive(Clone, Debug)]
pub struct KdTree {
    /// Points in tree order (an in-place nested median layout).
    pts: Vec<Point2>,
    /// Original index of each tree-ordered point.
    idx: Vec<u32>,
}

impl KdTree {
    /// Builds a tree over `points`.
    ///
    /// # Panics
    /// Panics when any coordinate is non-finite.
    pub fn build(points: &[Point2]) -> Self {
        for (i, p) in points.iter().enumerate() {
            assert!(p.is_finite(), "point {i} is not finite: {p:?}");
        }
        let mut pts = points.to_vec();
        let mut idx: Vec<u32> = (0..points.len() as u32).collect();
        if !pts.is_empty() {
            build_rec(&mut pts, &mut idx, 0);
        }
        KdTree { pts, idx }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.pts.len()
    }

    /// True when the tree is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pts.is_empty()
    }

    /// Original index of the nearest point to `q`, or `None` when empty.
    pub fn nearest(&self, q: Point2) -> Option<usize> {
        if self.pts.is_empty() {
            return None;
        }
        let mut best = (usize::MAX, f64::INFINITY);
        self.nearest_rec(0, self.pts.len(), 0, q, &mut best);
        Some(self.idx[best.0] as usize)
    }

    /// Original indices of the `k` nearest points to `q`, closest first.
    /// Returns fewer when the tree holds fewer than `k` points.
    pub fn k_nearest(&self, q: Point2, k: usize) -> Vec<usize> {
        if self.pts.is_empty() || k == 0 {
            return Vec::new();
        }
        // Max-heap of (dist_sq, tree position) capped at k.
        let mut heap: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
        self.k_nearest_rec(0, self.pts.len(), 0, q, k, &mut heap);
        heap.sort_by(|a, b| crate::cmp_f64(a.0, b.0));
        heap.into_iter()
            .map(|(_, pos)| self.idx[pos] as usize)
            .collect()
    }

    /// Original indices of every point within (closed) `radius` of `q`.
    pub fn query_radius(&self, q: Point2, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        if self.pts.is_empty() || !radius.is_finite() || radius < 0.0 {
            return out;
        }
        self.radius_rec(0, self.pts.len(), 0, q, radius * radius, &mut out);
        out
    }

    fn nearest_rec(&self, lo: usize, hi: usize, axis: usize, q: Point2, best: &mut (usize, f64)) {
        if lo >= hi {
            return;
        }
        let mid = lo + (hi - lo) / 2;
        let p = self.pts[mid];
        let d2 = p.distance_sq(q);
        if d2 < best.1 {
            *best = (mid, d2);
        }
        let diff = if axis == 0 { q.x - p.x } else { q.y - p.y };
        let (near, far) = if diff < 0.0 {
            ((lo, mid), (mid + 1, hi))
        } else {
            ((mid + 1, hi), (lo, mid))
        };
        self.nearest_rec(near.0, near.1, axis ^ 1, q, best);
        if diff * diff < best.1 {
            self.nearest_rec(far.0, far.1, axis ^ 1, q, best);
        }
    }

    fn k_nearest_rec(
        &self,
        lo: usize,
        hi: usize,
        axis: usize,
        q: Point2,
        k: usize,
        heap: &mut Vec<(f64, usize)>,
    ) {
        if lo >= hi {
            return;
        }
        let mid = lo + (hi - lo) / 2;
        let p = self.pts[mid];
        let d2 = p.distance_sq(q);
        if heap.len() < k {
            heap.push((d2, mid));
            heap.sort_by(|a, b| crate::cmp_f64_desc(a.0, b.0)); // worst first
        } else if d2 < heap[0].0 {
            heap[0] = (d2, mid);
            heap.sort_by(|a, b| crate::cmp_f64_desc(a.0, b.0));
        }
        let diff = if axis == 0 { q.x - p.x } else { q.y - p.y };
        let (near, far) = if diff < 0.0 {
            ((lo, mid), (mid + 1, hi))
        } else {
            ((mid + 1, hi), (lo, mid))
        };
        self.k_nearest_rec(near.0, near.1, axis ^ 1, q, k, heap);
        let worst = if heap.len() < k {
            f64::INFINITY
        } else {
            heap[0].0
        };
        if diff * diff < worst {
            self.k_nearest_rec(far.0, far.1, axis ^ 1, q, k, heap);
        }
    }

    fn radius_rec(
        &self,
        lo: usize,
        hi: usize,
        axis: usize,
        q: Point2,
        r2: f64,
        out: &mut Vec<usize>,
    ) {
        if lo >= hi {
            return;
        }
        let mid = lo + (hi - lo) / 2;
        let p = self.pts[mid];
        if p.distance_sq(q) <= r2 {
            out.push(self.idx[mid] as usize);
        }
        let diff = if axis == 0 { q.x - p.x } else { q.y - p.y };
        let (near, far) = if diff < 0.0 {
            ((lo, mid), (mid + 1, hi))
        } else {
            ((mid + 1, hi), (lo, mid))
        };
        self.radius_rec(near.0, near.1, axis ^ 1, q, r2, out);
        if diff * diff <= r2 {
            self.radius_rec(far.0, far.1, axis ^ 1, q, r2, out);
        }
    }
}

/// Recursive median layout: `pts[lo + (hi-lo)/2]` becomes the splitting
/// node of `[lo, hi)` on `axis`.
///
/// The median is found by sorting the (point, index) pairs of the
/// subrange on the axis coordinate — `O(n log² n)` total build, simple
/// and branch-predictable at the point counts this crate handles
/// (thousands).
fn build_rec(pts: &mut [Point2], idx: &mut [u32], axis: usize) {
    let n = pts.len();
    if n <= 1 {
        return;
    }
    let mut paired: Vec<(Point2, u32)> = pts.iter().copied().zip(idx.iter().copied()).collect();
    paired.sort_by(|a, b| {
        let ka = if axis == 0 { a.0.x } else { a.0.y };
        let kb = if axis == 0 { b.0.x } else { b.0.y };
        crate::cmp_f64(ka, kb).then(a.1.cmp(&b.1))
    });
    for (k, (p, i)) in paired.into_iter().enumerate() {
        pts[k] = p;
        idx[k] = i;
    }
    let mid = n / 2;
    let (left_p, rest_p) = pts.split_at_mut(mid);
    let (left_i, rest_i) = idx.split_at_mut(mid);
    build_rec(left_p, left_i, axis ^ 1);
    build_rec(&mut rest_p[1..], &mut rest_i[1..], axis ^ 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn brute_radius(points: &[Point2], q: Point2, r: f64) -> Vec<usize> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance_sq(q) <= r * r)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t = KdTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.nearest(Point2::ORIGIN), None);
        assert!(t.k_nearest(Point2::ORIGIN, 3).is_empty());
        assert!(t.query_radius(Point2::ORIGIN, 10.0).is_empty());
    }

    #[test]
    fn single_point() {
        let t = KdTree::build(&[Point2::new(3.0, 4.0)]);
        assert_eq!(t.nearest(Point2::ORIGIN), Some(0));
        assert_eq!(t.k_nearest(Point2::ORIGIN, 5), vec![0]);
        assert_eq!(t.query_radius(Point2::ORIGIN, 5.0), vec![0]);
        assert!(t.query_radius(Point2::ORIGIN, 4.99).is_empty());
    }

    #[test]
    fn duplicate_points_all_found() {
        let pts = vec![Point2::new(1.0, 1.0); 5];
        let t = KdTree::build(&pts);
        let mut found = t.query_radius(Point2::new(1.0, 1.0), 0.0);
        found.sort_unstable();
        assert_eq!(found, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn k_nearest_ordering() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(3.0, 0.0),
            Point2::new(7.0, 0.0),
        ];
        let t = KdTree::build(&pts);
        assert_eq!(t.k_nearest(Point2::new(0.5, 0.0), 3), vec![0, 2, 3]);
        assert_eq!(t.k_nearest(Point2::new(9.0, 0.0), 2), vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "not finite")]
    fn non_finite_point_rejected() {
        let _ = KdTree::build(&[Point2::new(f64::INFINITY, 0.0)]);
    }

    proptest! {
        #[test]
        fn prop_radius_matches_brute_force(
            pts in proptest::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 0..150),
            qx in -100.0f64..1100.0,
            qy in -100.0f64..1100.0,
            r in 0.0f64..300.0,
        ) {
            let points: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let t = KdTree::build(&points);
            let mut got = t.query_radius(Point2::new(qx, qy), r);
            let mut want = brute_radius(&points, Point2::new(qx, qy), r);
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn prop_nearest_matches_brute_force(
            pts in proptest::collection::vec((0.0f64..500.0, 0.0f64..500.0), 1..100),
            qx in -50.0f64..550.0,
            qy in -50.0f64..550.0,
        ) {
            let points: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let t = KdTree::build(&points);
            let q = Point2::new(qx, qy);
            let got = t.nearest(q).unwrap();
            let best = points.iter().map(|p| p.distance_sq(q)).fold(f64::INFINITY, f64::min);
            prop_assert!((points[got].distance_sq(q) - best).abs() < 1e-9);
        }

        #[test]
        fn prop_k_nearest_matches_brute_force(
            pts in proptest::collection::vec((0.0f64..200.0, 0.0f64..200.0), 1..60),
            qx in 0.0f64..200.0,
            qy in 0.0f64..200.0,
            k in 1usize..10,
        ) {
            let points: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let t = KdTree::build(&points);
            let q = Point2::new(qx, qy);
            let got = t.k_nearest(q, k);
            prop_assert_eq!(got.len(), k.min(points.len()));
            // Distances must be sorted and match the k smallest by brute force.
            let got_d: Vec<f64> = got.iter().map(|&i| points[i].distance_sq(q)).collect();
            for w in got_d.windows(2) {
                prop_assert!(w[0] <= w[1] + 1e-12);
            }
            let mut all: Vec<f64> = points.iter().map(|p| p.distance_sq(q)).collect();
            all.sort_by(|a, b| crate::cmp_f64(*a, *b));
            for (a, b) in got_d.iter().zip(all.iter()) {
                prop_assert!((a - b).abs() < 1e-9, "kNN distance mismatch");
            }
        }

        #[test]
        fn prop_agrees_with_spatial_grid(
            pts in proptest::collection::vec((0.0f64..800.0, 0.0f64..800.0), 1..120),
            qx in 0.0f64..800.0,
            qy in 0.0f64..800.0,
            r in 0.0f64..200.0,
        ) {
            let points: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let tree = KdTree::build(&points);
            let grid = crate::SpatialGrid::build(&points, 50.0);
            let q = Point2::new(qx, qy);
            let mut a = tree.query_radius(q, r);
            let mut b = grid.query_radius(q, r);
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "kd-tree and bucket grid disagree");
        }
    }
}
