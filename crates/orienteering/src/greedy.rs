//! Deterministic greedy solver: prize/cost-ratio cheapest insertion with
//! 2-opt compaction between waves.

use crate::local::{fill_insertions, two_opt_cost};
use crate::{OrienteeringInstance, OrienteeringSolution};

/// Greedy ratio-insertion solver.
///
/// Repeats: insert vertices by best prize-per-marginal-cost ratio until
/// nothing fits, compact the tour with 2-opt (freeing budget), and try
/// again. Deterministic; never worse than the depot-only solution.
pub fn solve_greedy(inst: &OrienteeringInstance) -> OrienteeringSolution {
    if inst.is_empty() {
        return OrienteeringSolution {
            tour: Vec::new(),
            cost: 0.0,
            prize: 0.0,
        };
    }
    let mut tour = vec![inst.depot()];
    let mut in_tour = vec![false; inst.len()];
    in_tour[inst.depot()] = true;
    let mut cost = 0.0;
    for _ in 0..8 {
        let before = tour.len();
        let _ = fill_insertions(inst, &mut tour, &mut in_tour, cost);
        cost = two_opt_cost(inst, &mut tour); // recomputes the exact cost
                                              // Stop when a whole wave added nothing (2-opt can only free
                                              // budget, so a second chance is only useful after an insertion).
        if tour.len() == before {
            break;
        }
    }
    OrienteeringSolution {
        prize: inst.tour_prize(&tour),
        cost,
        tour,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavdc_graph::DistMatrix;

    #[test]
    fn empty_instance() {
        let inst = OrienteeringInstance::new(DistMatrix::zeros(0), vec![], 0, 5.0);
        let s = solve_greedy(&inst);
        assert!(s.tour.is_empty());
    }

    #[test]
    fn depot_only_when_nothing_fits() {
        let m = DistMatrix::from_euclidean(&[(0.0, 0.0), (100.0, 0.0)]);
        let inst = OrienteeringInstance::new(m, vec![0.0, 10.0], 0, 1.0);
        let s = solve_greedy(&inst);
        assert_eq!(s.tour, vec![0]);
    }

    #[test]
    fn prefers_high_ratio_vertices() {
        // Vertex 1: prize 10 at distance 1 (ratio ~5 out-and-back).
        // Vertex 2: prize 12 at distance 50 (ratio 0.12). Budget fits only
        // one of them.
        let m = DistMatrix::from_euclidean(&[(0.0, 0.0), (1.0, 0.0), (50.0, 0.0)]);
        let inst = OrienteeringInstance::new(m, vec![0.0, 10.0, 12.0], 0, 60.0);
        let s = solve_greedy(&inst);
        assert!(s.prize >= 10.0);
        assert!(s.cost <= 60.0 + 1e-9);
    }

    #[test]
    fn collects_cluster_within_budget() {
        let pts: Vec<(f64, f64)> = (0..10)
            .map(|i| (((i % 5) as f64) * 2.0, ((i / 5) as f64) * 2.0))
            .collect();
        let m = DistMatrix::from_euclidean(&pts);
        let inst = OrienteeringInstance::new(m, vec![1.0; 10], 0, 50.0);
        let s = solve_greedy(&inst);
        // Generous budget: greedy should take everything.
        assert_eq!(s.tour.len(), 10);
        assert!(s.cost <= 50.0);
    }

    #[test]
    fn is_deterministic() {
        let pts: Vec<(f64, f64)> = (0..15)
            .map(|i| ((i * 37 % 50) as f64, (i * 13 % 50) as f64))
            .collect();
        let m = DistMatrix::from_euclidean(&pts);
        let prizes: Vec<f64> = (0..15).map(|i| (i % 4 + 1) as f64).collect();
        let inst = OrienteeringInstance::new(m, prizes, 0, 80.0);
        let a = solve_greedy(&inst);
        let b = solve_greedy(&inst);
        assert_eq!(a, b);
    }
}
