//! Branch-and-bound exact orienteering.
//!
//! Depth-first search over partial paths from the depot, branching on the
//! next vertex to visit. Two prunes keep it exact but fast:
//!
//! * **Reachability** — vertex `v` is only appended when the path can
//!   still close: `cost + d(last, v) + d(v, depot) <= budget`.
//! * **Prize bound** — the best completion of a partial path collects at
//!   most the prizes of the vertices that are *individually* still
//!   reachable; when `prize + bound <= best`, the subtree is cut.
//!
//! Children are explored best-ratio-first so good incumbents appear
//! early. Exact for any size in principle; practical to `n ≈ 30` on
//! Euclidean instances (the subset DP in [`crate::Backend::Exact`] stops
//! at 17 but is faster below that). A node-expansion budget guards
//! against adversarial instances — if it is exhausted the solver panics
//! rather than silently returning a non-optimal answer.

use crate::local::two_opt_cost;
use crate::{OrienteeringInstance, OrienteeringSolution};

/// Hard cap on explored nodes; hit only by adversarial instances.
const MAX_NODES: u64 = 50_000_000;

/// Exact solver by branch and bound.
///
/// # Panics
/// Panics when the node budget is exhausted before the search space is
/// proven — use the GRASP backend for instances that large.
// Outside tests the crate dispatches through solve_bnb_obs directly.
#[cfg_attr(not(test), allow(dead_code))]
pub fn solve_bnb(inst: &OrienteeringInstance) -> OrienteeringSolution {
    solve_bnb_obs(inst, &uavdc_obs::NOOP)
}

/// Like [`solve_bnb`], reporting `bnb.nodes` (expansions) and
/// `bnb.pruned` (subtrees cut by the prize bound) to `rec`. Both are
/// accumulated in the search state and flushed once after the search, so
/// the recorder costs nothing per node.
///
/// # Panics
/// Panics when the node budget is exhausted, exactly as [`solve_bnb`].
pub fn solve_bnb_obs(
    inst: &OrienteeringInstance,
    rec: &dyn uavdc_obs::Recorder,
) -> OrienteeringSolution {
    if inst.is_empty() {
        return OrienteeringSolution {
            tour: Vec::new(),
            cost: 0.0,
            prize: 0.0,
        };
    }
    let depot = inst.depot();
    // Seed the incumbent with the greedy solution: a strong initial
    // bound that prunes most of the tree immediately.
    let mut best = crate::greedy::solve_greedy(inst);
    // Improve its cost ordering so the bound is as tight as possible.
    {
        let mut tour = best.tour.clone();
        let cost = two_opt_cost(inst, &mut tour);
        best = OrienteeringSolution {
            prize: inst.tour_prize(&tour),
            cost,
            tour,
        };
    }

    let n = inst.len();
    let mut visited = vec![false; n];
    visited[depot] = true;
    let mut path = vec![depot];
    let mut nodes = 0u64;
    let mut search = Search {
        inst,
        best,
        nodes: &mut nodes,
        pruned: 0,
    };
    search.dfs(&mut path, &mut visited, 0.0, inst.prize(depot));
    let pruned = search.pruned;
    let best = search.best;
    rec.add("bnb.nodes", nodes);
    rec.add("bnb.pruned", pruned);
    best
}

struct Search<'a> {
    inst: &'a OrienteeringInstance,
    best: OrienteeringSolution,
    nodes: &'a mut u64,
    pruned: u64,
}

impl Search<'_> {
    fn dfs(&mut self, path: &mut Vec<usize>, visited: &mut [bool], cost: f64, prize: f64) {
        *self.nodes += 1;
        assert!(
            *self.nodes <= MAX_NODES,
            "branch-and-bound node budget exhausted; instance too large for exact search"
        );
        let inst = self.inst;
        let depot = inst.depot();
        // lint:allow(panic-site): dfs is always entered with the depot pushed
        let last = *path.last().expect("path holds at least the depot");

        // Current path closes into a feasible tour (reachability prunes
        // guarantee it); update the incumbent.
        let close = cost + inst.dist(last, depot);
        debug_assert!(close <= inst.budget + 1e-9);
        if prize > self.best.prize + 1e-12
            || (prize >= self.best.prize - 1e-12 && close < self.best.cost - 1e-12)
        {
            self.best = OrienteeringSolution {
                tour: path.clone(),
                cost: close,
                prize,
            };
        }

        // Candidate children: reachable unvisited vertices.
        let mut children: Vec<(usize, f64)> = Vec::new();
        let mut bound = 0.0;
        for (v, &seen) in visited.iter().enumerate() {
            if seen {
                continue;
            }
            let extend = cost + inst.dist(last, v) + inst.dist(v, depot);
            if extend <= inst.budget + 1e-12 {
                bound += inst.prize(v);
                if inst.prize(v) > 0.0 || children.is_empty() {
                    children.push((v, inst.dist(last, v)));
                }
            }
        }
        if prize + bound <= self.best.prize + 1e-12 {
            self.pruned += 1;
            return; // even collecting every reachable prize cannot win
        }
        // Best ratio first: prize per approach distance.
        children.sort_by(|a, b| {
            let ra = inst.prize(a.0) / a.1.max(1e-12);
            let rb = inst.prize(b.0) / b.1.max(1e-12);
            uavdc_geom::cmp_f64_desc(ra, rb).then(a.0.cmp(&b.0))
        });
        for (v, d) in children {
            let new_cost = cost + d;
            // Re-check closure (the bound above used each vertex
            // independently).
            if new_cost + inst.dist(v, depot) > inst.budget + 1e-12 {
                continue;
            }
            visited[v] = true;
            path.push(v);
            self.dfs(path, visited, new_cost, prize + inst.prize(v));
            path.pop();
            visited[v] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::solve_exact;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use uavdc_graph::DistMatrix;

    fn random_instance(seed: u64, n: usize, budget: f64) -> OrienteeringInstance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        let prizes: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
        OrienteeringInstance::new(DistMatrix::from_euclidean(&pts), prizes, 0, budget)
    }

    #[test]
    fn trivial_instances() {
        let e = OrienteeringInstance::new(DistMatrix::zeros(0), vec![], 0, 1.0);
        assert!(solve_bnb(&e).tour.is_empty());
        let one = OrienteeringInstance::new(DistMatrix::zeros(1), vec![5.0], 0, 0.0);
        let s = solve_bnb(&one);
        assert_eq!(s.tour, vec![0]);
        assert_eq!(s.prize, 5.0);
    }

    #[test]
    fn matches_dp_on_line() {
        let m = DistMatrix::from_euclidean(&[
            (0.0, 0.0),
            (1.0, 0.0),
            (2.0, 0.0),
            (3.0, 0.0),
            (10.0, 0.0),
        ]);
        let inst = OrienteeringInstance::new(m, vec![0.0, 1.0, 2.0, 3.0, 50.0], 0, 8.0);
        let bnb = solve_bnb(&inst);
        let dp = solve_exact(&inst);
        assert_eq!(bnb.prize, dp.prize);
        assert!(inst.verify(&bnb));
    }

    #[test]
    fn handles_more_vertices_than_dp() {
        // 24 non-depot vertices: beyond the DP cap, fine for B&B.
        let inst = random_instance(5, 25, 150.0);
        let s = solve_bnb(&inst);
        assert!(inst.verify(&s));
        // Must be at least as good as greedy (it seeds from it).
        let greedy = crate::greedy::solve_greedy(&inst);
        assert!(s.prize >= greedy.prize - 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_bnb_matches_subset_dp(
            seed in 0u64..2000,
            n in 2usize..11,
            budget in 10.0f64..350.0,
        ) {
            let inst = random_instance(seed, n, budget);
            let bnb = solve_bnb(&inst);
            let dp = solve_exact(&inst);
            prop_assert!(inst.verify(&bnb));
            prop_assert!((bnb.prize - dp.prize).abs() < 1e-9,
                "bnb {} vs dp {}", bnb.prize, dp.prize);
        }
    }
}
