//! The team orienteering problem: `m` tours, one budget each.
//!
//! Generalises orienteering to a fleet: find `m` closed tours through the
//! shared depot, pairwise vertex-disjoint (except the depot), each within
//! the budget, maximising the total prize \[Vansteenwegen et al. 2011\].
//! This is the natural reduction target for multi-UAV variants of the
//! paper's Algorithm 1.
//!
//! Solved with the same machinery as the single-tour case: greedy best
//! (vertex, tour, position) ratio insertion with 2-opt compaction, plus a
//! seeded shake-and-refill improvement loop. Exact solutions for tiny
//! instances come from brute-force vertex-to-tour assignment over the
//! single-tour exact solver (tests only).

use crate::local::two_opt_cost;
use crate::OrienteeringInstance;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A team solution: one tour per team member.
#[derive(Clone, Debug, PartialEq)]
pub struct TeamSolution {
    /// Tours, each starting at the depot; vertex-disjoint apart from it.
    pub tours: Vec<Vec<usize>>,
    /// Cost of each tour.
    pub costs: Vec<f64>,
    /// Total prize over all tours (depot prize counted once).
    pub prize: f64,
}

impl TeamSolution {
    /// Verifies feasibility against the instance: per-tour budgets, depot
    /// starts, and vertex disjointness.
    pub fn verify(&self, inst: &OrienteeringInstance) -> bool {
        let mut seen = vec![false; inst.len()];
        let mut prize = 0.0;
        if !self.tours.is_empty() {
            prize += inst.prize(inst.depot());
        }
        for (tour, &cost) in self.tours.iter().zip(&self.costs) {
            if tour.first() != Some(&inst.depot()) {
                return false;
            }
            let real = inst.tour_cost(tour);
            if (real - cost).abs() > 1e-6 * (1.0 + real) || real > inst.budget + 1e-6 {
                return false;
            }
            for &v in tour.iter().skip(1) {
                if v >= inst.len() || seen[v] || v == inst.depot() {
                    return false;
                }
                seen[v] = true;
                prize += inst.prize(v);
            }
        }
        (prize - self.prize).abs() < 1e-6 * (1.0 + prize)
    }
}

/// Configuration of the team solver.
#[derive(Clone, Copy, Debug)]
pub struct TeamConfig {
    /// Number of tours.
    pub teams: usize,
    /// Shake-and-refill improvement rounds.
    pub ils_rounds: usize,
    /// RNG seed (deterministic for equal seeds).
    pub seed: u64,
}

impl TeamConfig {
    /// `m` tours with default improvement effort.
    pub fn new(teams: usize) -> Self {
        TeamConfig {
            teams,
            ils_rounds: 12,
            seed: 0x7ea1,
        }
    }
}

/// Greedy + ILS team orienteering solver.
///
/// # Panics
/// Panics when `teams == 0`.
pub fn solve_team(inst: &OrienteeringInstance, cfg: &TeamConfig) -> TeamSolution {
    assert!(cfg.teams >= 1, "need at least one team member");
    if inst.is_empty() {
        return TeamSolution {
            tours: Vec::new(),
            costs: Vec::new(),
            prize: 0.0,
        };
    }
    let m = cfg.teams;
    let mut tours: Vec<Vec<usize>> = vec![vec![inst.depot()]; m];
    let mut costs = vec![0.0f64; m];
    let mut in_tour = vec![false; inst.len()];
    in_tour[inst.depot()] = true;

    fill_team(inst, &mut tours, &mut costs, &mut in_tour);
    let mut best = snapshot(inst, &tours, &costs);

    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    for _ in 0..cfg.ils_rounds {
        // Shake: eject a random run of vertices from a random tour.
        let t = rng.gen_range(0..m);
        if tours[t].len() > 1 {
            let evict = 1 + rng.gen_range(0..tours[t].len().div_ceil(3).max(1));
            for _ in 0..evict {
                if tours[t].len() <= 1 {
                    break;
                }
                let i = 1 + rng.gen_range(0..tours[t].len() - 1);
                in_tour[tours[t][i]] = false;
                tours[t].remove(i);
            }
            costs[t] = two_opt_cost(inst, &mut tours[t]);
        }
        fill_team(inst, &mut tours, &mut costs, &mut in_tour);
        let cand = snapshot(inst, &tours, &costs);
        if cand.prize > best.prize + 1e-12
            || (cand.prize >= best.prize - 1e-12
                && cand.costs.iter().sum::<f64>() < best.costs.iter().sum::<f64>() - 1e-12)
        {
            best = cand;
        } else {
            // Roll back to the best known state for the next shake.
            tours = best.tours.clone();
            costs = best.costs.clone();
            in_tour.iter_mut().for_each(|b| *b = false);
            in_tour[inst.depot()] = true;
            for tour in &tours {
                for &v in tour.iter().skip(1) {
                    in_tour[v] = true;
                }
            }
        }
    }
    debug_assert!(best.verify(inst));
    best
}

fn snapshot(inst: &OrienteeringInstance, tours: &[Vec<usize>], costs: &[f64]) -> TeamSolution {
    let mut prize = inst.prize(inst.depot());
    for tour in tours {
        for &v in tour.iter().skip(1) {
            prize += inst.prize(v);
        }
    }
    TeamSolution {
        tours: tours.to_vec(),
        costs: costs.to_vec(),
        prize,
    }
}

/// Best-ratio insertion across all tours until nothing fits; 2-opt
/// compaction between waves.
fn fill_team(
    inst: &OrienteeringInstance,
    tours: &mut [Vec<usize>],
    costs: &mut [f64],
    in_tour: &mut [bool],
) {
    loop {
        let mut inserted = false;
        loop {
            // (vertex, tour, pos, delta) with the best prize/delta ratio.
            let mut best: Option<(usize, usize, usize, f64, f64)> = None;
            for (v, &used) in in_tour.iter().enumerate() {
                if used || inst.prize(v) <= 0.0 {
                    continue;
                }
                for (t, tour) in tours.iter().enumerate() {
                    let (delta, pos) = crate::local::best_insertion(inst, tour, v);
                    if costs[t] + delta > inst.budget + 1e-12 {
                        continue;
                    }
                    let ratio = if delta <= 1e-12 {
                        f64::INFINITY
                    } else {
                        inst.prize(v) / delta
                    };
                    let better = match best {
                        None => true,
                        Some((bv, bt, _, _, br)) => {
                            ratio > br + 1e-15 || (ratio >= br - 1e-15 && (v, t) < (bv, bt))
                        }
                    };
                    if better {
                        best = Some((v, t, pos, delta, ratio));
                    }
                }
            }
            let Some((v, t, pos, delta, _)) = best else {
                break;
            };
            tours[t].insert(pos, v);
            in_tour[v] = true;
            costs[t] += delta;
            inserted = true;
        }
        // Compact every tour; if that freed budget, try another wave.
        let mut freed = false;
        for (t, tour) in tours.iter_mut().enumerate() {
            let new_cost = two_opt_cost(inst, tour);
            if new_cost < costs[t] - 1e-9 {
                freed = true;
            }
            costs[t] = new_cost;
        }
        if !(inserted && freed) {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::solve_greedy;
    use proptest::prelude::*;
    use rand::Rng;
    use uavdc_graph::DistMatrix;

    fn random_instance(seed: u64, n: usize, budget: f64) -> OrienteeringInstance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        let prizes: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..10.0)).collect();
        OrienteeringInstance::new(DistMatrix::from_euclidean(&pts), prizes, 0, budget)
    }

    #[test]
    fn empty_instance() {
        let inst = OrienteeringInstance::new(DistMatrix::zeros(0), vec![], 0, 5.0);
        let s = solve_team(&inst, &TeamConfig::new(3));
        assert!(s.tours.is_empty());
    }

    #[test]
    fn single_team_comparable_to_single_tour_greedy() {
        let inst = random_instance(5, 20, 120.0);
        let team = solve_team(&inst, &TeamConfig::new(1));
        assert!(team.verify(&inst));
        let single = solve_greedy(&inst);
        // Same greedy family plus ILS: must not be drastically worse.
        assert!(
            team.prize >= 0.9 * single.prize,
            "team {} vs single {}",
            team.prize,
            single.prize
        );
    }

    #[test]
    fn more_teams_never_collect_less() {
        let inst = random_instance(9, 30, 80.0);
        let mut prev = -1.0;
        for m in [1, 2, 3] {
            let s = solve_team(&inst, &TeamConfig::new(m));
            assert!(s.verify(&inst), "m={m} infeasible");
            assert!(
                s.prize >= prev - 1e-9,
                "m={m}: prize dropped from {prev} to {}",
                s.prize
            );
            prev = s.prize;
        }
    }

    #[test]
    fn two_teams_cover_two_separated_clusters() {
        // Two prize clusters on opposite sides; one budget reaches one
        // cluster, two teams reach both.
        let mut pts = vec![(50.0, 50.0)];
        for i in 0..4 {
            pts.push((5.0 + i as f64, 50.0));
            pts.push((95.0 - i as f64, 50.0));
        }
        let m = DistMatrix::from_euclidean(&pts);
        let prizes = vec![0.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0];
        let inst = OrienteeringInstance::new(m, prizes, 0, 100.0);
        let one = solve_team(&inst, &TeamConfig::new(1));
        let two = solve_team(&inst, &TeamConfig::new(2));
        assert!(two.verify(&inst));
        assert!(
            two.prize >= 40.0 - 1e-9,
            "two teams should take both clusters: {}",
            two.prize
        );
        assert!(one.prize < two.prize);
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = random_instance(11, 25, 90.0);
        let cfg = TeamConfig {
            teams: 2,
            ils_rounds: 8,
            seed: 42,
        };
        assert_eq!(solve_team(&inst, &cfg), solve_team(&inst, &cfg));
    }

    #[test]
    #[should_panic(expected = "at least one team")]
    fn zero_teams_rejected() {
        let inst = random_instance(1, 5, 10.0);
        let _ = solve_team(&inst, &TeamConfig::new(0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_team_solution_always_feasible(
            seed in 0u64..500,
            n in 3usize..20,
            m in 1usize..4,
            budget in 10.0f64..200.0,
        ) {
            let inst = random_instance(seed, n, budget);
            let s = solve_team(&inst, &TeamConfig { teams: m, ils_rounds: 6, seed });
            prop_assert!(s.verify(&inst));
            prop_assert_eq!(s.tours.len(), m);
        }
    }
}
