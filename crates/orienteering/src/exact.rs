//! Exact orienteering by subset dynamic programming.
//!
//! For every subset `S` of non-depot vertices, compute the cheapest path
//! from the depot through exactly `S`, ending at each `v ∈ S` (Held–Karp
//! recurrence). A subset is feasible when some endpoint closes back to the
//! depot within budget; the answer is the feasible subset of maximum
//! prize. `O(2^k · k²)` for `k = n - 1` non-depot vertices.

use crate::{OrienteeringInstance, OrienteeringSolution};

/// Hard cap on the non-depot vertex count: `2^17 · 17` f64 entries ≈ 18 MB.
pub const EXACT_MAX_NON_DEPOT: usize = 17;

/// Exact solver.
///
/// # Panics
/// Panics when the instance has more than [`EXACT_MAX_NON_DEPOT`] + 1
/// vertices.
pub fn solve_exact(inst: &OrienteeringInstance) -> OrienteeringSolution {
    let n = inst.len();
    if n == 0 {
        return OrienteeringSolution {
            tour: Vec::new(),
            cost: 0.0,
            prize: 0.0,
        };
    }
    if n == 1 {
        return inst.trivial_solution();
    }
    let depot = inst.depot();
    // Map non-depot vertices to 0..k.
    let others: Vec<usize> = (0..n).filter(|&v| v != depot).collect();
    let k = others.len();
    assert!(
        k <= EXACT_MAX_NON_DEPOT,
        "exact orienteering limited to {EXACT_MAX_NON_DEPOT} non-depot vertices, got {k}"
    );
    let full: usize = (1 << k) - 1;
    let mut dp = vec![f64::INFINITY; (full + 1) * k];
    let mut parent = vec![usize::MAX; (full + 1) * k];
    for i in 0..k {
        dp[(1 << i) * k + i] = inst.dist(depot, others[i]);
    }
    let mut best = inst.trivial_solution();
    for mask in 1..=full {
        // Prize of this subset (recomputed cheaply via lowest-bit DP would
        // be possible; the direct sum keeps the code simple and the cost
        // is dominated by the inner transition loop anyway).
        let mut subset_prize = inst.prize(depot);
        let mut bits = mask;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            subset_prize += inst.prize(others[i]);
        }
        for last in 0..k {
            if mask & (1 << last) == 0 {
                continue;
            }
            let cur = dp[mask * k + last];
            if !cur.is_finite() {
                continue;
            }
            // Feasibility: close the cycle.
            let cycle = cur + inst.dist(others[last], depot);
            if cycle <= inst.budget + 1e-12 && subset_prize > best.prize + 1e-12 {
                let tour = reconstruct(inst, &others, &parent, mask, last);
                best = OrienteeringSolution {
                    cost: inst.tour_cost(&tour),
                    prize: subset_prize,
                    tour,
                };
            }
            // Transitions.
            let rest = full & !mask;
            let mut bits = rest;
            while bits != 0 {
                let nxt = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let nm = mask | (1 << nxt);
                let cand = cur + inst.dist(others[last], others[nxt]);
                if cand < dp[nm * k + nxt] {
                    dp[nm * k + nxt] = cand;
                    parent[nm * k + nxt] = last;
                }
            }
        }
    }
    best
}

fn reconstruct(
    inst: &OrienteeringInstance,
    others: &[usize],
    parent: &[usize],
    mut mask: usize,
    mut last: usize,
) -> Vec<usize> {
    let k = others.len();
    let mut rev = Vec::new();
    while last != usize::MAX {
        rev.push(others[last]);
        let p = parent[mask * k + last];
        mask &= !(1 << last);
        last = p;
    }
    rev.push(inst.depot());
    rev.reverse();
    rev
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavdc_graph::DistMatrix;

    fn inst(pts: &[(f64, f64)], prizes: Vec<f64>, budget: f64) -> OrienteeringInstance {
        OrienteeringInstance::new(DistMatrix::from_euclidean(pts), prizes, 0, budget)
    }

    #[test]
    fn empty_and_singleton() {
        let e = OrienteeringInstance::new(DistMatrix::zeros(0), vec![], 0, 1.0);
        assert!(solve_exact(&e).tour.is_empty());
        let s = inst(&[(0.0, 0.0)], vec![7.0], 1.0);
        let sol = solve_exact(&s);
        assert_eq!(sol.tour, vec![0]);
        assert_eq!(sol.prize, 7.0);
    }

    #[test]
    fn picks_dense_prizes_over_far_jackpot() {
        // Near cluster worth 30 total vs a far vertex worth 40 that blows
        // the budget.
        let sol = solve_exact(&inst(
            &[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0), (100.0, 0.0)],
            vec![0.0, 10.0, 10.0, 10.0, 40.0],
            10.0,
        ));
        assert_eq!(sol.prize, 30.0);
        assert_eq!(sol.tour.len(), 4);
    }

    #[test]
    fn takes_jackpot_when_budget_allows() {
        let sol = solve_exact(&inst(
            &[(0.0, 0.0), (1.0, 0.0), (100.0, 0.0)],
            vec![0.0, 1.0, 40.0],
            201.0,
        ));
        // 0 -> 1 -> 2 -> 0 costs 1 + 99 + 100 = 200 <= 201: all prizes.
        assert_eq!(sol.prize, 41.0);
        assert!(sol.cost <= 201.0);
    }

    #[test]
    fn exact_budget_boundary_is_feasible() {
        let sol = solve_exact(&inst(&[(0.0, 0.0), (5.0, 0.0)], vec![0.0, 9.0], 10.0));
        assert_eq!(sol.prize, 9.0);
        assert_eq!(sol.cost, 10.0);
    }

    #[test]
    fn just_under_budget_is_infeasible() {
        // Out-and-back costs 10.0; a budget of 9.999 cannot reach it.
        let sol = solve_exact(&inst(&[(0.0, 0.0), (5.0, 0.0)], vec![0.0, 9.0], 9.999));
        assert_eq!(sol.tour, vec![0]);
        assert_eq!(sol.prize, 0.0);
    }
}
