//! Instance and solution types for the orienteering problem.

use uavdc_graph::DistMatrix;

/// A closed-tour orienteering instance.
#[derive(Clone, Debug)]
pub struct OrienteeringInstance {
    dist: DistMatrix,
    prize: Vec<f64>,
    depot: usize,
    /// Maximum total edge weight of the tour (the UAV's energy budget in
    /// the planner's use).
    // lint:allow(raw-quantity): the orienteering layer is dimension-generic; uavdc-core supplies joules at the AuxGraph boundary
    pub budget: f64,
}

impl OrienteeringInstance {
    /// Creates an instance.
    ///
    /// # Panics
    /// Panics when `prize` length differs from the matrix size, the depot
    /// is out of range, any prize is negative/non-finite, or the budget is
    /// negative/non-finite.
    // lint:allow(raw-quantity): the orienteering layer is dimension-generic; uavdc-core supplies joules at the AuxGraph boundary
    pub fn new(dist: DistMatrix, prize: Vec<f64>, depot: usize, budget: f64) -> Self {
        assert_eq!(prize.len(), dist.len(), "one prize per vertex");
        assert!(depot < dist.len().max(1), "depot {depot} out of range");
        assert!(
            budget.is_finite() && budget >= 0.0,
            "budget must be finite and >= 0"
        );
        for (v, &p) in prize.iter().enumerate() {
            assert!(
                p.is_finite() && p >= 0.0,
                "prize of vertex {v} must be finite and >= 0"
            );
        }
        OrienteeringInstance {
            dist,
            prize,
            depot,
            budget,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// True when the instance has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }

    /// The depot vertex.
    #[inline]
    pub fn depot(&self) -> usize {
        self.depot
    }

    /// Edge weight between vertices.
    #[inline]
    // lint:allow(raw-quantity): the orienteering layer is dimension-generic; uavdc-core supplies joules at the AuxGraph boundary
    pub fn dist(&self, u: usize, v: usize) -> f64 {
        self.dist.get(u, v)
    }

    /// The underlying matrix.
    #[inline]
    pub fn matrix(&self) -> &DistMatrix {
        &self.dist
    }

    /// Prize of a vertex.
    #[inline]
    pub fn prize(&self, v: usize) -> f64 {
        self.prize[v]
    }

    /// Total cyclic cost of a visiting order.
    pub fn tour_cost(&self, tour: &[usize]) -> f64 {
        if tour.len() < 2 {
            return 0.0;
        }
        let mut c = 0.0;
        for k in 0..tour.len() {
            c += self.dist.get(tour[k], tour[(k + 1) % tour.len()]);
        }
        c
    }

    /// Total prize of a visiting order.
    pub fn tour_prize(&self, tour: &[usize]) -> f64 {
        tour.iter().map(|&v| self.prize[v]).sum()
    }

    /// Checks a solution end to end: starts at the depot, visits no vertex
    /// twice, and its claimed cost/prize match recomputation within
    /// tolerance, with the cost within budget.
    pub fn verify(&self, sol: &OrienteeringSolution) -> bool {
        if sol.tour.first() != Some(&self.depot) {
            return false;
        }
        let mut seen = vec![false; self.len()];
        for &v in &sol.tour {
            if v >= self.len() || seen[v] {
                return false;
            }
            seen[v] = true;
        }
        let cost = self.tour_cost(&sol.tour);
        let prize = self.tour_prize(&sol.tour);
        (cost - sol.cost).abs() < 1e-6 * (1.0 + cost)
            && (prize - sol.prize).abs() < 1e-6 * (1.0 + prize)
            && cost <= self.budget + 1e-6
    }

    /// The depot-only solution (always feasible).
    pub fn trivial_solution(&self) -> OrienteeringSolution {
        OrienteeringSolution {
            tour: vec![self.depot],
            cost: 0.0,
            prize: self.prize.get(self.depot).copied().unwrap_or(0.0),
        }
    }
}

/// A feasible orienteering tour.
#[derive(Clone, Debug, PartialEq)]
pub struct OrienteeringSolution {
    /// Visiting order, starting at the depot; the closing edge back to the
    /// depot is implicit.
    pub tour: Vec<usize>,
    /// Total cyclic edge weight.
    pub cost: f64,
    /// Total collected prize.
    pub prize: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> OrienteeringInstance {
        let m = DistMatrix::from_euclidean(&[(0.0, 0.0), (3.0, 0.0), (3.0, 4.0)]);
        OrienteeringInstance::new(m, vec![0.0, 10.0, 20.0], 0, 12.0)
    }

    #[test]
    fn cost_and_prize_computation() {
        let inst = small();
        assert_eq!(inst.tour_cost(&[0]), 0.0);
        assert_eq!(inst.tour_cost(&[0, 1]), 6.0);
        assert_eq!(inst.tour_cost(&[0, 1, 2]), 3.0 + 4.0 + 5.0);
        assert_eq!(inst.tour_prize(&[0, 1, 2]), 30.0);
    }

    #[test]
    fn verify_accepts_valid_solution() {
        let inst = small();
        let sol = OrienteeringSolution {
            tour: vec![0, 1, 2],
            cost: 12.0,
            prize: 30.0,
        };
        assert!(inst.verify(&sol));
    }

    #[test]
    fn verify_rejects_wrong_start() {
        let inst = small();
        let sol = OrienteeringSolution {
            tour: vec![1, 0],
            cost: 6.0,
            prize: 10.0,
        };
        assert!(!inst.verify(&sol));
    }

    #[test]
    fn verify_rejects_duplicates_and_overbudget() {
        let inst = small();
        let dup = OrienteeringSolution {
            tour: vec![0, 1, 1],
            cost: 6.0,
            prize: 20.0,
        };
        assert!(!inst.verify(&dup));
        let over = OrienteeringSolution {
            tour: vec![0, 2],
            cost: 10.0,
            prize: 20.0,
        };
        assert!(inst.verify(&over)); // cost 10 <= 12
        let mut inst2 = small();
        inst2.budget = 9.0;
        assert!(!inst2.verify(&over));
    }

    #[test]
    fn verify_rejects_wrong_bookkeeping() {
        let inst = small();
        let bad_cost = OrienteeringSolution {
            tour: vec![0, 1],
            cost: 5.0,
            prize: 10.0,
        };
        assert!(!inst.verify(&bad_cost));
        let bad_prize = OrienteeringSolution {
            tour: vec![0, 1],
            cost: 6.0,
            prize: 11.0,
        };
        assert!(!inst.verify(&bad_prize));
    }

    #[test]
    #[should_panic(expected = "one prize per vertex")]
    fn mismatched_prizes_panic() {
        let m = DistMatrix::zeros(2);
        let _ = OrienteeringInstance::new(m, vec![1.0], 0, 1.0);
    }

    #[test]
    fn trivial_solution_is_depot_only() {
        let inst = small();
        let t = inst.trivial_solution();
        assert_eq!(t.tour, vec![0]);
        assert!(inst.verify(&t));
    }
}
