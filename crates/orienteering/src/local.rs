//! Local-search building blocks shared by the greedy and GRASP solvers.

use crate::OrienteeringInstance;

/// 2-opt cost reduction on a tour of *global* vertex indices, in place.
/// Prize is unaffected (the vertex set does not change); only the order —
/// and thus cost — improves. Returns the new cost.
pub fn two_opt_cost(inst: &OrienteeringInstance, tour: &mut [usize]) -> f64 {
    let n = tour.len();
    if n >= 4 {
        let mut improved = true;
        let mut sweeps = 0;
        while improved && sweeps < 100 {
            improved = false;
            sweeps += 1;
            for i in 0..n - 1 {
                for j in (i + 2)..n {
                    if i == 0 && j == n - 1 {
                        continue;
                    }
                    let (a, b) = (tour[i], tour[i + 1]);
                    let (c, d) = (tour[j], tour[(j + 1) % n]);
                    let delta =
                        inst.dist(a, c) + inst.dist(b, d) - inst.dist(a, b) - inst.dist(c, d);
                    if delta < -1e-10 {
                        tour[i + 1..=j].reverse();
                        improved = true;
                    }
                }
            }
        }
    }
    inst.tour_cost(tour)
}

/// Marginal cost of inserting `v` at its best position, and that position.
pub fn best_insertion(inst: &OrienteeringInstance, tour: &[usize], v: usize) -> (f64, usize) {
    match tour.len() {
        0 => (0.0, 0),
        1 => (2.0 * inst.dist(tour[0], v), 1),
        n => {
            let mut best = f64::INFINITY;
            let mut pos = 0;
            for i in 0..n {
                let a = tour[i];
                let b = tour[(i + 1) % n];
                let delta = inst.dist(a, v) + inst.dist(v, b) - inst.dist(a, b);
                if delta < best {
                    best = delta;
                    // Inserting on the closing edge appends at the end so
                    // the depot stays first.
                    pos = i + 1;
                }
            }
            (best, pos)
        }
    }
}

/// Greedily inserts every vertex that still fits, best prize/cost ratio
/// first. `in_tour[v]` must reflect `tour` membership; both are updated.
/// Returns the updated cost.
pub fn fill_insertions(
    inst: &OrienteeringInstance,
    tour: &mut Vec<usize>,
    in_tour: &mut [bool],
    mut cost: f64,
) -> f64 {
    loop {
        let mut best_v = usize::MAX;
        let mut best_pos = 0;
        let mut best_ratio = -1.0;
        let mut best_delta = 0.0;
        #[allow(clippy::needless_range_loop)] // several arrays indexed by v
        for v in 0..inst.len() {
            if in_tour[v] || inst.prize(v) <= 0.0 {
                continue;
            }
            let (delta, pos) = best_insertion(inst, tour, v);
            if cost + delta > inst.budget + 1e-12 {
                continue;
            }
            let ratio = if delta <= 1e-12 {
                f64::INFINITY
            } else {
                inst.prize(v) / delta
            };
            if ratio > best_ratio {
                best_ratio = ratio;
                best_v = v;
                best_pos = pos;
                best_delta = delta;
            }
        }
        if best_v == usize::MAX {
            return cost;
        }
        tour.insert(best_pos, best_v);
        in_tour[best_v] = true;
        cost += best_delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavdc_graph::DistMatrix;

    fn square_instance(budget: f64) -> OrienteeringInstance {
        let m = DistMatrix::from_euclidean(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]);
        OrienteeringInstance::new(m, vec![0.0, 1.0, 1.0, 1.0], 0, budget)
    }

    #[test]
    fn two_opt_fixes_crossed_square() {
        let inst = square_instance(100.0);
        let mut tour = vec![0, 2, 1, 3];
        let cost = two_opt_cost(&inst, &mut tour);
        assert!((cost - 4.0).abs() < 1e-9);
    }

    #[test]
    fn two_opt_on_small_tours_is_identity() {
        let inst = square_instance(100.0);
        let mut tour = vec![0, 1];
        assert_eq!(two_opt_cost(&inst, &mut tour), 2.0);
        assert_eq!(tour, vec![0, 1]);
    }

    #[test]
    fn best_insertion_positions() {
        let inst = square_instance(100.0);
        // Inserting 1 into tour [0, 2] — both positions cost the same on a
        // square; delta = d(0,1)+d(1,2)-d(0,2) = 2 - sqrt(2).
        let (d, pos) = best_insertion(&inst, &[0, 2], 1);
        assert!((d - (2.0 - 2f64.sqrt())).abs() < 1e-12);
        assert!(pos == 1 || pos == 0);
    }

    #[test]
    fn fill_insertions_respects_budget() {
        let inst = square_instance(3.9); // full square needs 4.0
        let mut tour = vec![0];
        let mut in_tour = vec![false; 4];
        in_tour[0] = true;
        let cost = fill_insertions(&inst, &mut tour, &mut in_tour, 0.0);
        assert!(cost <= 3.9 + 1e-9);
        assert!(tour.len() < 4, "cannot fit every vertex in budget 3.9");
        assert!((inst.tour_cost(&tour) - cost).abs() < 1e-9);
    }

    #[test]
    fn fill_insertions_takes_everything_when_budget_allows() {
        let inst = square_instance(4.0);
        let mut tour = vec![0];
        let mut in_tour = vec![false; 4];
        in_tour[0] = true;
        let cost = fill_insertions(&inst, &mut tour, &mut in_tour, 0.0);
        assert_eq!(tour.len(), 4);
        assert!((cost - 4.0).abs() < 1e-9);
    }
}
