//! Solvers for the (closed-tour) orienteering problem.
//!
//! Given a complete edge-weighted graph, a prize on every vertex, a depot,
//! and a budget, the orienteering problem asks for a closed tour through
//! the depot whose total edge weight is at most the budget and whose
//! collected vertex prize is maximum \[Vansteenwegen et al. 2011\].
//!
//! The paper's Algorithm 1 reduces the data-collection maximization
//! problem (no coverage overlap) to exactly this problem on an auxiliary
//! graph whose edge weights fold the hovering energies into the travel
//! energies (its Eq. 9), with the UAV's battery as the budget.
//!
//! Three backends:
//!
//! * [`Backend::Exact`] — Held–Karp-style subset DP, exact, `n <= 17`.
//!   Ground truth for the tests and usable for tiny planning instances.
//! * [`Backend::Greedy`] — cheapest-insertion by prize/cost ratio.
//! * [`Backend::Grasp`] — randomized greedy construction (RCL) + 2-opt +
//!   insertion/removal local search with shake perturbations, seeded and
//!   deterministic. The default for real instances.
//!
//! The theoretical algorithm the paper cites (Bansal et al.'s
//! approximation) is a theory construction built on k-TSP subroutines that
//! published systems do not implement; this solver suite is the standard
//! empirical substitute (see DESIGN.md §4) and is validated against the
//! exact DP on small instances.
//!
//! # Example
//!
//! ```
//! use uavdc_graph::DistMatrix;
//! use uavdc_orienteering::{OrienteeringInstance, Backend, solve};
//!
//! // Four sites on a line; depot at 0; budget only reaches the near ones.
//! let m = DistMatrix::from_euclidean(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (50.0, 0.0)]);
//! let inst = OrienteeringInstance::new(m, vec![0.0, 5.0, 5.0, 100.0], 0, 10.0);
//! let sol = solve(&inst, Backend::Exact);
//! assert_eq!(sol.prize, 10.0); // the far prize is unreachable
//! assert!(sol.cost <= 10.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bnb;
mod exact;
mod grasp;
mod greedy;
mod local;
mod problem;
pub mod team;

pub use grasp::GraspConfig;
pub use problem::{OrienteeringInstance, OrienteeringSolution};
pub use team::{solve_team, TeamConfig, TeamSolution};

/// Which solver to run.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum Backend {
    /// Exact subset DP (`n <= 17`). Panics on larger instances.
    Exact,
    /// Exact branch and bound (practical to `n ≈ 30` on Euclidean
    /// instances; panics if its node budget is exhausted).
    BranchAndBound,
    /// Deterministic greedy ratio insertion + 2-opt.
    Greedy,
    /// GRASP/ILS metaheuristic with the given configuration.
    Grasp(GraspConfig),
    /// Exact for tiny instances, GRASP otherwise.
    #[default]
    Auto,
}

/// Solves an orienteering instance with the chosen backend.
///
/// The returned solution is always feasible (`cost <= budget`); when no
/// vertex fits in the budget the solution is the depot alone with its own
/// prize.
pub fn solve(inst: &OrienteeringInstance, backend: Backend) -> OrienteeringSolution {
    solve_obs(inst, backend, &uavdc_obs::NOOP)
}

/// Like [`solve`], reporting backend-specific search effort to `rec`
/// (`grasp.iterations`/`grasp.improvements`, `bnb.nodes`/`bnb.pruned`).
///
/// The recorder never influences the search: for any `rec`, the returned
/// solution is bit-identical to `solve(inst, backend)`.
pub fn solve_obs(
    inst: &OrienteeringInstance,
    backend: Backend,
    rec: &dyn uavdc_obs::Recorder,
) -> OrienteeringSolution {
    let sol = match backend {
        Backend::Exact => exact::solve_exact(inst),
        Backend::BranchAndBound => bnb::solve_bnb_obs(inst, rec),
        Backend::Greedy => greedy::solve_greedy(inst),
        Backend::Grasp(cfg) => grasp::solve_grasp_obs(inst, &cfg, rec),
        Backend::Auto => {
            if inst.len() <= 14 {
                exact::solve_exact(inst)
            } else {
                grasp::solve_grasp_obs(inst, &GraspConfig::default(), rec)
            }
        }
    };
    debug_assert!(
        sol.cost <= inst.budget + 1e-6,
        "solver returned infeasible tour"
    );
    debug_assert!(inst.verify(&sol));
    sol
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavdc_graph::DistMatrix;

    fn line_instance(budget: f64) -> OrienteeringInstance {
        let m = DistMatrix::from_euclidean(&[
            (0.0, 0.0),
            (1.0, 0.0),
            (2.0, 0.0),
            (3.0, 0.0),
            (10.0, 0.0),
        ]);
        OrienteeringInstance::new(m, vec![0.0, 1.0, 2.0, 3.0, 50.0], 0, budget)
    }

    #[test]
    fn all_backends_feasible_and_ordered() {
        let inst = line_instance(8.0);
        let exact = solve(&inst, Backend::Exact);
        let greedy = solve(&inst, Backend::Greedy);
        let grasp = solve(&inst, Backend::Grasp(GraspConfig::default()));
        assert!(exact.prize >= greedy.prize - 1e-9);
        assert!(exact.prize >= grasp.prize - 1e-9);
        for s in [&exact, &greedy, &grasp] {
            assert!(s.cost <= 8.0 + 1e-9);
            assert_eq!(s.tour[0], 0);
        }
        // Budget 8 reaches vertex 3 and back (cost 6), not vertex 4.
        assert_eq!(exact.prize, 6.0);
    }

    #[test]
    fn zero_budget_keeps_depot_only() {
        let inst = line_instance(0.0);
        for backend in [
            Backend::Exact,
            Backend::Greedy,
            Backend::Grasp(GraspConfig::default()),
        ] {
            let s = solve(&inst, backend);
            assert_eq!(s.tour, vec![0]);
            assert_eq!(s.cost, 0.0);
        }
    }

    #[test]
    fn large_budget_collects_everything() {
        let inst = line_instance(1000.0);
        let s = solve(&inst, Backend::Auto);
        assert_eq!(s.prize, 56.0);
        assert_eq!(s.tour.len(), 5);
    }

    #[test]
    fn auto_switches_backend_by_size() {
        // Just exercise both paths through Auto.
        let small = line_instance(5.0);
        let _ = solve(&small, Backend::Auto);
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| ((i * 37 % 50) as f64, (i * 13 % 50) as f64))
            .collect();
        let m = DistMatrix::from_euclidean(&pts);
        let prizes = vec![1.0; 20];
        let inst = OrienteeringInstance::new(m, prizes, 0, 60.0);
        let s = solve(&inst, Backend::Auto);
        assert!(s.cost <= 60.0 + 1e-9);
    }
}
