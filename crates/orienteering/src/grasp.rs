//! GRASP + iterated local search for orienteering.
//!
//! Each GRASP iteration builds a randomized greedy tour (restricted
//! candidate list over prize/cost ratios), improves it with 2-opt and
//! further insertions, then runs a short iterated-local-search loop that
//! shakes the solution by ejecting random vertices and refilling. Fully
//! deterministic for a fixed seed.

use crate::local::{best_insertion, fill_insertions, two_opt_cost};
use crate::{OrienteeringInstance, OrienteeringSolution};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// GRASP parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraspConfig {
    /// Number of independent randomized constructions.
    pub iterations: usize,
    /// RCL threshold in `(0, 1]`: a candidate joins the restricted list
    /// when its ratio is at least `alpha` times the best ratio. `1.0`
    /// degenerates to pure greedy.
    pub alpha: f64,
    /// Shake/refill rounds per construction.
    pub ils_rounds: usize,
    /// RNG seed: identical seeds give identical solutions.
    pub seed: u64,
}

impl Default for GraspConfig {
    fn default() -> Self {
        GraspConfig {
            iterations: 12,
            alpha: 0.6,
            ils_rounds: 8,
            seed: 0x5eed_cafe,
        }
    }
}

impl GraspConfig {
    /// A lighter configuration for benchmarking large sweeps.
    pub fn fast() -> Self {
        GraspConfig {
            iterations: 4,
            alpha: 0.6,
            ils_rounds: 3,
            seed: 0x5eed_cafe,
        }
    }
}

/// GRASP/ILS solver. Always feasible; never worse than depot-only.
// Outside tests the crate dispatches through solve_grasp_obs directly.
#[cfg_attr(not(test), allow(dead_code))]
pub fn solve_grasp(inst: &OrienteeringInstance, cfg: &GraspConfig) -> OrienteeringSolution {
    solve_grasp_obs(inst, cfg, &uavdc_obs::NOOP)
}

/// Like [`solve_grasp`], reporting `grasp.iterations` (constructions run)
/// and `grasp.improvements` (incumbent updates) to `rec`. Effort counters
/// are accumulated locally and flushed once, so the recorder adds no work
/// to the search loop itself.
pub fn solve_grasp_obs(
    inst: &OrienteeringInstance,
    cfg: &GraspConfig,
    rec: &dyn uavdc_obs::Recorder,
) -> OrienteeringSolution {
    if inst.is_empty() {
        return OrienteeringSolution {
            tour: Vec::new(),
            cost: 0.0,
            prize: 0.0,
        };
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut best = inst.trivial_solution();
    let mut improvements = 0u64;
    for _ in 0..cfg.iterations.max(1) {
        let mut tour = randomized_construction(inst, cfg.alpha, &mut rng);
        let mut cost = two_opt_cost(inst, &mut tour);
        let mut in_tour = vec![false; inst.len()];
        for &v in &tour {
            in_tour[v] = true;
        }
        cost = fill_insertions(inst, &mut tour, &mut in_tour, cost);
        let prize = inst.tour_prize(&tour);
        if prize > best.prize {
            improvements += 1;
            best = OrienteeringSolution {
                tour: tour.clone(),
                cost,
                prize,
            };
        }
        // Iterated local search: eject a few random vertices, refill.
        for _ in 0..cfg.ils_rounds {
            if tour.len() <= 1 {
                break;
            }
            let evict = 1 + rng.gen_range(0..tour.len().div_ceil(4).max(1));
            for _ in 0..evict {
                if tour.len() <= 1 {
                    break;
                }
                let i = 1 + rng.gen_range(0..tour.len() - 1);
                in_tour[tour[i]] = false;
                tour.remove(i);
            }
            let c = two_opt_cost(inst, &mut tour);
            let _ = fill_insertions(inst, &mut tour, &mut in_tour, c);
            let c = two_opt_cost(inst, &mut tour); // recomputes exactly
            let cost = fill_insertions(inst, &mut tour, &mut in_tour, c);
            let prize = inst.tour_prize(&tour);
            if prize > best.prize + 1e-12 || (prize >= best.prize - 1e-12 && cost < best.cost) {
                improvements += 1;
                best = OrienteeringSolution {
                    tour: tour.clone(),
                    cost,
                    prize,
                };
            }
        }
    }
    rec.add("grasp.iterations", cfg.iterations.max(1) as u64);
    rec.add("grasp.improvements", improvements);
    best
}

/// Randomized greedy construction: repeatedly pick a random member of the
/// restricted candidate list (feasible vertices whose ratio is within
/// `alpha` of the best) and insert it at its cheapest position.
fn randomized_construction(
    inst: &OrienteeringInstance,
    alpha: f64,
    rng: &mut SmallRng,
) -> Vec<usize> {
    let mut tour = vec![inst.depot()];
    let mut in_tour = vec![false; inst.len()];
    in_tour[inst.depot()] = true;
    let mut cost = 0.0;
    let mut candidates: Vec<(usize, f64, usize, f64)> = Vec::new(); // (v, ratio, pos, delta)
    loop {
        candidates.clear();
        let mut best_ratio: f64 = -1.0;
        #[allow(clippy::needless_range_loop)] // several arrays indexed by v
        for v in 0..inst.len() {
            if in_tour[v] || inst.prize(v) <= 0.0 {
                continue;
            }
            let (delta, pos) = best_insertion(inst, &tour, v);
            if cost + delta > inst.budget + 1e-12 {
                continue;
            }
            let ratio = if delta <= 1e-12 {
                f64::MAX
            } else {
                inst.prize(v) / delta
            };
            best_ratio = best_ratio.max(ratio);
            candidates.push((v, ratio, pos, delta));
        }
        if candidates.is_empty() {
            return tour;
        }
        // lint:allow(float-eq): sentinel comparison against the exact f64::MAX assigned above
        let threshold = if best_ratio == f64::MAX {
            f64::MAX
        } else {
            alpha * best_ratio
        };
        let rcl: Vec<&(usize, f64, usize, f64)> =
            candidates.iter().filter(|c| c.1 >= threshold).collect();
        let pick = rcl[rng.gen_range(0..rcl.len())];
        tour.insert(pick.2, pick.0);
        in_tour[pick.0] = true;
        cost += pick.3;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::solve_exact;
    use crate::greedy::solve_greedy;
    use proptest::prelude::*;
    use rand::Rng;
    use uavdc_graph::DistMatrix;

    fn random_instance(seed: u64, n: usize, budget: f64) -> OrienteeringInstance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        let prizes: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
        OrienteeringInstance::new(DistMatrix::from_euclidean(&pts), prizes, 0, budget)
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let inst = random_instance(7, 25, 120.0);
        let cfg = GraspConfig::default();
        let a = solve_grasp(&inst, &cfg);
        let b = solve_grasp(&inst, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_still_feasible() {
        let inst = random_instance(11, 30, 150.0);
        for seed in 0..5 {
            let s = solve_grasp(
                &inst,
                &GraspConfig {
                    seed,
                    ..GraspConfig::default()
                },
            );
            assert!(inst.verify(&s), "seed {seed} produced invalid solution");
        }
    }

    #[test]
    fn at_least_as_good_as_greedy_typically() {
        // GRASP includes greedy-like constructions; on this instance it
        // must match or beat plain greedy.
        let inst = random_instance(3, 20, 100.0);
        let g = solve_greedy(&inst);
        let s = solve_grasp(&inst, &GraspConfig::default());
        assert!(
            s.prize >= g.prize - 1e-9,
            "grasp {} < greedy {}",
            s.prize,
            g.prize
        );
    }

    #[test]
    fn zero_iterations_clamped_to_one() {
        let inst = random_instance(5, 10, 50.0);
        let s = solve_grasp(
            &inst,
            &GraspConfig {
                iterations: 0,
                ..GraspConfig::default()
            },
        );
        assert!(inst.verify(&s));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_grasp_feasible_and_bounded_by_exact(
            seed in 0u64..1000,
            n in 4usize..11,
            budget in 10.0f64..300.0,
        ) {
            let inst = random_instance(seed, n, budget);
            let grasp = solve_grasp(&inst, &GraspConfig::default());
            prop_assert!(inst.verify(&grasp));
            let exact = solve_exact(&inst);
            prop_assert!(grasp.prize <= exact.prize + 1e-9,
                "grasp {} beat exact {}", grasp.prize, exact.prize);
            // GRASP is a heuristic: on most tiny instances it is optimal,
            // but adversarial tight budgets (where only one specific far
            // combination fits) can defeat it. Keep a meaningful but
            // robust floor; optimality-gap statistics live in the
            // ablation bench.
            prop_assert!(grasp.prize >= 0.55 * exact.prize - 1e-9,
                "grasp {} far below exact {}", grasp.prize, exact.prize);
        }
    }
}
