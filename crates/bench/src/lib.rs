//! Experiment harness regenerating the paper's evaluation (§VII).
//!
//! Each `run_fig*` function reproduces one figure: it sweeps the paper's
//! parameter, runs every algorithm on the same 15 seeded instances, and
//! reports the mean collected volume (sub-figure a) and the mean planner
//! running time (sub-figure b). Results can be printed as an aligned
//! table or written to CSV.
//!
//! | Figure | Sweep | Algorithms |
//! |---|---|---|
//! | Fig. 3 | battery `E` ∈ 3–9·10⁵ J | Algorithm 1, benchmark |
//! | Fig. 4 | grid `δ` ∈ 5–30 m | Algorithm 2, Algorithm 3 (K=2, K=4), benchmark |
//! | Fig. 5 | battery `E` ∈ 3–9·10⁵ J (δ = 10 m) | same as Fig. 4 |
//!
//! `HarnessConfig::scale` shrinks instances for quick runs (device count
//! scales linearly, the region side with its square root, preserving
//! density); `scale = 1.0` is the paper's full setting.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compare;
pub mod json;
pub mod service;

use std::time::Instant;
use uavdc_core::{
    Alg1Config, Alg1Planner, Alg2Config, Alg2Planner, Alg3Config, Alg3Planner, BenchmarkPlanner,
    CollectionPlan, Planner,
};
use uavdc_net::generator::{uniform, ScenarioParams};
use uavdc_net::units::{megabytes_as_gb, Joules};
use uavdc_net::Scenario;
use uavdc_sim::{simulate, SimConfig};

/// Harness-wide settings.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Instances averaged per data point (paper: 15).
    pub num_instances: usize,
    /// Instance scale in `(0, 1]`; 1.0 = 500 devices in 1 km².
    pub scale: f64,
    /// Base RNG seed; instance `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Run the instances of a data point on parallel threads.
    pub parallel_instances: bool,
    /// Cross-check every plan with the discrete-event simulator and panic
    /// on disagreement (slower; on by default — reproducibility first).
    pub simulate_check: bool,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            num_instances: 15,
            scale: 1.0,
            base_seed: 0x9a9e,
            parallel_instances: true,
            simulate_check: true,
        }
    }
}

impl HarnessConfig {
    /// A configuration small enough for CI and Criterion.
    pub fn quick() -> Self {
        HarnessConfig {
            num_instances: 3,
            scale: 0.2,
            ..HarnessConfig::default()
        }
    }
}

/// One averaged data point of a sweep.
#[derive(Clone, Debug)]
pub struct DataPoint {
    /// Sweep coordinate (joules for E-sweeps, metres for δ-sweeps).
    pub x: f64,
    /// Algorithm label as used in the paper's legends.
    pub algorithm: &'static str,
    /// Mean collected volume, gigabytes.
    pub collected_gb: f64,
    /// Mean planner running time, seconds.
    pub runtime_s: f64,
    /// Mean energy actually used by the plan, joules.
    pub energy_used_j: f64,
    /// Mean number of hovering stops.
    pub stops: f64,
}

/// Which planner to run at a sweep point.
#[derive(Clone, Copy, Debug)]
pub enum AlgorithmSpec {
    /// Algorithm 1 with grid edge `δ`.
    Alg1 {
        /// Grid edge length, metres.
        delta: f64,
    },
    /// Algorithm 2 with grid edge `δ`.
    Alg2 {
        /// Grid edge length, metres.
        delta: f64,
    },
    /// Algorithm 3 with grid edge `δ` and `K` sojourn partitions.
    Alg3 {
        /// Grid edge length, metres.
        delta: f64,
        /// Sojourn partitions.
        k: usize,
    },
    /// The pruning benchmark (no parameters).
    Benchmark,
}

impl AlgorithmSpec {
    /// Legend label.
    pub fn label(&self) -> &'static str {
        match self {
            AlgorithmSpec::Alg1 { .. } => "Algorithm 1",
            AlgorithmSpec::Alg2 { .. } => "Algorithm 2",
            AlgorithmSpec::Alg3 { k: 2, .. } => "Algorithm 3 (K=2)",
            AlgorithmSpec::Alg3 { k: 4, .. } => "Algorithm 3 (K=4)",
            AlgorithmSpec::Alg3 { .. } => "Algorithm 3",
            AlgorithmSpec::Benchmark => "Benchmark",
        }
    }

    fn plan(&self, scenario: &Scenario) -> CollectionPlan {
        match *self {
            AlgorithmSpec::Alg1 { delta } => Alg1Planner::new(Alg1Config {
                delta,
                ..Alg1Config::default()
            })
            .plan(scenario),
            AlgorithmSpec::Alg2 { delta } => Alg2Planner::new(Alg2Config {
                delta,
                ..Alg2Config::default()
            })
            .plan(scenario),
            AlgorithmSpec::Alg3 { delta, k } => Alg3Planner::new(Alg3Config {
                delta,
                k,
                ..Alg3Config::default()
            })
            .plan(scenario),
            AlgorithmSpec::Benchmark => BenchmarkPlanner.plan(scenario),
        }
    }
}

/// Runs one algorithm on one instance; returns (GB, seconds, J, stops).
fn run_once(spec: AlgorithmSpec, scenario: &Scenario, check: bool) -> (f64, f64, f64, f64) {
    let start = Instant::now();
    let plan = spec.plan(scenario);
    let dt = start.elapsed().as_secs_f64();
    plan.validate(scenario)
        // lint:allow(panic-site): the harness fails fast on invalid plans by design
        .unwrap_or_else(|e| panic!("{} produced invalid plan: {e}", spec.label()));
    if check {
        let outcome = simulate(scenario, &plan, &SimConfig::default());
        assert!(
            outcome.agrees_with_plan(&plan, scenario),
            "{} plan disagrees with simulation (claimed {} GB, simulated {} GB)",
            spec.label(),
            megabytes_as_gb(plan.collected_volume()),
            megabytes_as_gb(outcome.collected),
        );
    }
    (
        megabytes_as_gb(plan.collected_volume()),
        dt,
        plan.total_energy(scenario).value(),
        plan.stops.len() as f64,
    )
}

/// Averages one algorithm over the configured instances at one sweep
/// point. `make_scenario(seed)` builds the instance.
fn average_point(
    cfg: &HarnessConfig,
    spec: AlgorithmSpec,
    x: f64,
    make_scenario: &(dyn Fn(u64) -> Scenario + Sync),
) -> DataPoint {
    let n = cfg.num_instances.max(1);
    let mut results = vec![(0.0, 0.0, 0.0, 0.0); n];
    if cfg.parallel_instances && n > 1 {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        let _ = threads;
        crossbeam::thread::scope(|scope| {
            for (i, slot) in results.iter_mut().enumerate() {
                let seed = cfg.base_seed + i as u64;
                let check = cfg.simulate_check;
                scope.spawn(move |_| {
                    let scenario = make_scenario(seed);
                    *slot = run_once(spec, &scenario, check);
                });
            }
        })
        // lint:allow(panic-site): Err only when a worker thread panicked; re-raising is correct
        .expect("instance thread panicked");
    } else {
        for (i, slot) in results.iter_mut().enumerate() {
            let scenario = make_scenario(cfg.base_seed + i as u64);
            *slot = run_once(spec, &scenario, cfg.simulate_check);
        }
    }
    let nf = n as f64;
    DataPoint {
        x,
        algorithm: spec.label(),
        collected_gb: results.iter().map(|r| r.0).sum::<f64>() / nf,
        runtime_s: results.iter().map(|r| r.1).sum::<f64>() / nf,
        energy_used_j: results.iter().map(|r| r.2).sum::<f64>() / nf,
        stops: results.iter().map(|r| r.3).sum::<f64>() / nf,
    }
}

/// The paper's battery sweep: `E ∈ {3, 4.5, 6, 7.5, 9}·10⁵ J`.
pub fn energy_sweep() -> Vec<f64> {
    vec![3.0e5, 4.5e5, 6.0e5, 7.5e5, 9.0e5]
}

/// The paper's grid sweep: `δ ∈ {5, 10, 15, 20, 25, 30}` m.
pub fn delta_sweep() -> Vec<f64> {
    vec![5.0, 10.0, 15.0, 20.0, 25.0, 30.0]
}

/// Fig. 3: Algorithm 1 vs benchmark over the battery sweep (collected
/// volume and running time), no coverage overlap.
pub fn run_fig3(cfg: &HarnessConfig) -> Vec<DataPoint> {
    let mut out = Vec::new();
    for &e in &energy_sweep() {
        let params = ScenarioParams::default()
            .scaled(cfg.scale)
            .with_capacity(Joules(e));
        let make = move |seed: u64| uniform(&params, seed);
        for spec in [
            AlgorithmSpec::Alg1 { delta: 10.0 },
            AlgorithmSpec::Benchmark,
        ] {
            out.push(average_point(cfg, spec, e, &make));
        }
    }
    out
}

/// Fig. 4: δ sweep at the default battery, with coverage overlap.
pub fn run_fig4(cfg: &HarnessConfig) -> Vec<DataPoint> {
    let mut out = Vec::new();
    for &delta in &delta_sweep() {
        let params = ScenarioParams::default().scaled(cfg.scale);
        let make = move |seed: u64| uniform(&params, seed);
        for spec in [
            AlgorithmSpec::Alg2 { delta },
            AlgorithmSpec::Alg3 { delta, k: 2 },
            AlgorithmSpec::Alg3 { delta, k: 4 },
            AlgorithmSpec::Benchmark,
        ] {
            out.push(average_point(cfg, spec, delta, &make));
        }
    }
    out
}

/// Fig. 5: battery sweep at `δ = 10 m`, with coverage overlap.
pub fn run_fig5(cfg: &HarnessConfig) -> Vec<DataPoint> {
    let mut out = Vec::new();
    for &e in &energy_sweep() {
        let params = ScenarioParams::default()
            .scaled(cfg.scale)
            .with_capacity(Joules(e));
        let make = move |seed: u64| uniform(&params, seed);
        for spec in [
            AlgorithmSpec::Alg2 { delta: 10.0 },
            AlgorithmSpec::Alg3 { delta: 10.0, k: 2 },
            AlgorithmSpec::Alg3 { delta: 10.0, k: 4 },
            AlgorithmSpec::Benchmark,
        ] {
            out.push(average_point(cfg, spec, e, &make));
        }
    }
    out
}

/// Supplementary experiment (beyond the paper): bandwidth sweep exposing
/// the hover-dominated regime where partial collection (Algorithm 3)
/// overtakes full collection (Algorithm 2). `x` is the uplink bandwidth
/// in MB/s.
pub fn run_hover_sweep(cfg: &HarnessConfig) -> Vec<DataPoint> {
    let mut out = Vec::new();
    for &bw in &[150.0, 40.0, 20.0, 10.0, 5.0] {
        let params = ScenarioParams {
            bandwidth: uavdc_net::units::MegaBytesPerSecond(bw),
            ..ScenarioParams::default().scaled(cfg.scale)
        };
        let make = move |seed: u64| uniform(&params, seed);
        for spec in [
            AlgorithmSpec::Alg2 { delta: 10.0 },
            AlgorithmSpec::Alg3 { delta: 10.0, k: 2 },
            AlgorithmSpec::Alg3 { delta: 10.0, k: 4 },
        ] {
            out.push(average_point(cfg, spec, bw, &make));
        }
    }
    out
}

/// Supplementary experiment: wind robustness. Plans Algorithm 2 against a
/// battery derated by the margin `x ∈ {0, 0.1, ..., 0.4}`, then flies the
/// plan with the full battery under per-leg headwind noise in
/// `[1.0, 1.5]`. `collected_gb` is the *delivered* volume (zero for
/// missions that die mid-air) and `stops` carries the completion rate in
/// percent.
pub fn run_wind_sweep(cfg: &HarnessConfig) -> Vec<DataPoint> {
    use uavdc_sim::WindModel;
    let mut out = Vec::new();
    for &margin in &[0.0, 0.1, 0.2, 0.3, 0.4] {
        let n = cfg.num_instances.max(1);
        let mut delivered = 0.0;
        let mut completed = 0usize;
        let mut runtime = 0.0;
        let mut energy = 0.0;
        for i in 0..n {
            let seed = cfg.base_seed + i as u64;
            let params = ScenarioParams::default().scaled(cfg.scale);
            let scenario = uniform(&params, seed);
            let mut derated = scenario.clone();
            derated.uav.capacity = scenario.uav.capacity * (1.0 - margin);
            let started = Instant::now();
            let plan = Alg2Planner::new(Alg2Config {
                delta: 10.0,
                ..Alg2Config::default()
            })
            .plan(&derated);
            runtime += started.elapsed().as_secs_f64();
            // lint:allow(panic-site): the harness fails fast on invalid plans by design
            plan.validate(&derated).expect("valid derated plan");
            let sim_cfg = SimConfig {
                wind: WindModel::uniform(1.0, 1.5, seed ^ 0x77aa),
                record_uploads: false,
                ..SimConfig::default()
            };
            let outcome = simulate(&scenario, &plan, &sim_cfg);
            delivered += megabytes_as_gb(outcome.collected);
            energy += outcome.energy_used.value();
            if outcome.completed {
                completed += 1;
            }
        }
        let nf = n as f64;
        out.push(DataPoint {
            x: margin,
            algorithm: "Algorithm 2 + margin",
            collected_gb: delivered / nf,
            runtime_s: runtime / nf,
            energy_used_j: energy / nf,
            stops: 100.0 * completed as f64 / nf,
        });
    }
    out
}

/// Supplementary experiment: fleet scaling. Collected volume and busiest
/// battery as the UAV count grows (Algorithm 2 per UAV, sector
/// partition). `x` is the fleet size; `energy_used_j` reports the busiest
/// UAV.
pub fn run_fleet_sweep(cfg: &HarnessConfig) -> Vec<DataPoint> {
    use uavdc_core::{FleetConfig, MultiUavPlanner};
    let mut out = Vec::new();
    for &m in &[1usize, 2, 3, 4, 6] {
        let n = cfg.num_instances.max(1);
        let mut gb = 0.0;
        let mut busiest = 0.0;
        let mut runtime = 0.0;
        let mut stops = 0.0;
        for i in 0..n {
            let seed = cfg.base_seed + i as u64;
            let params = ScenarioParams::default().scaled(cfg.scale);
            let scenario = uniform(&params, seed);
            let started = Instant::now();
            let fleet = MultiUavPlanner::new(
                Alg2Planner::new(Alg2Config {
                    delta: 10.0,
                    ..Alg2Config::default()
                }),
                FleetConfig::new(m),
            )
            .plan_fleet(&scenario);
            runtime += started.elapsed().as_secs_f64();
            // lint:allow(panic-site): the harness fails fast on invalid plans by design
            fleet.validate(&scenario).expect("valid fleet plan");
            gb += megabytes_as_gb(fleet.collected_volume());
            busiest += fleet.max_energy(&scenario).value();
            stops += fleet.plans.iter().map(|p| p.stops.len()).sum::<usize>() as f64;
        }
        let nf = n as f64;
        out.push(DataPoint {
            x: m as f64,
            algorithm: "Fleet (Alg 2, sectors)",
            collected_gb: gb / nf,
            runtime_s: runtime / nf,
            energy_used_j: busiest / nf,
            stops: stops / nf,
        });
    }
    out
}

/// Prints a figure's data points as an aligned table.
pub fn print_table(title: &str, x_label: &str, points: &[DataPoint]) {
    println!("\n== {title} ==");
    println!(
        "{:>12}  {:<20} {:>14} {:>12} {:>14} {:>8}",
        x_label, "algorithm", "collected (GB)", "time (s)", "energy (J)", "stops"
    );
    for p in points {
        println!(
            "{:>12.1}  {:<20} {:>14.2} {:>12.4} {:>14.0} {:>8.1}",
            p.x, p.algorithm, p.collected_gb, p.runtime_s, p.energy_used_j, p.stops
        );
    }
}

/// Writes data points as CSV (header + one row per point).
pub fn write_csv(
    path: &std::path::Path,
    x_label: &str,
    points: &[DataPoint],
) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "{x_label},algorithm,collected_gb,runtime_s,energy_used_j,stops"
    )?;
    for p in points {
        writeln!(
            f,
            "{},{},{},{},{},{}",
            p.x, p.algorithm, p.collected_gb, p.runtime_s, p.energy_used_j, p.stops
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HarnessConfig {
        HarnessConfig {
            num_instances: 2,
            scale: 0.06, // 30 devices
            base_seed: 7,
            parallel_instances: false,
            simulate_check: true,
        }
    }

    #[test]
    fn fig3_shape_alg1_beats_benchmark() {
        let pts = run_fig3(&tiny());
        assert_eq!(pts.len(), energy_sweep().len() * 2);
        // At every E, Algorithm 1 collects at least as much as the
        // benchmark (the paper reports ~2x at E = 3e5).
        for e in energy_sweep() {
            let a1 = pts
                .iter()
                .find(|p| p.x == e && p.algorithm == "Algorithm 1")
                .unwrap();
            let bench = pts
                .iter()
                .find(|p| p.x == e && p.algorithm == "Benchmark")
                .unwrap();
            assert!(
                a1.collected_gb >= bench.collected_gb * 0.95,
                "E={e}: alg1 {} < benchmark {}",
                a1.collected_gb,
                bench.collected_gb
            );
        }
    }

    #[test]
    fn fig4_shape_partial_beats_full_beats_benchmark() {
        let cfg = tiny();
        let pts = run_fig4(&HarnessConfig {
            num_instances: 1,
            ..cfg
        });
        for &delta in &[5.0, 30.0] {
            let a2 = pts
                .iter()
                .find(|p| p.x == delta && p.algorithm == "Algorithm 2")
                .unwrap();
            let a3 = pts
                .iter()
                .find(|p| p.x == delta && p.algorithm == "Algorithm 3 (K=4)")
                .unwrap();
            let bench = pts
                .iter()
                .find(|p| p.x == delta && p.algorithm == "Benchmark")
                .unwrap();
            assert!(a3.collected_gb >= a2.collected_gb - 1e-9);
            assert!(
                a2.collected_gb >= bench.collected_gb * 0.9,
                "δ={delta}: alg2 {} vs bench {}",
                a2.collected_gb,
                bench.collected_gb
            );
        }
    }

    #[test]
    fn fig5_collected_grows_with_energy() {
        let pts = run_fig5(&HarnessConfig {
            num_instances: 1,
            ..tiny()
        });
        for alg in ["Algorithm 2", "Algorithm 3 (K=2)", "Benchmark"] {
            let series: Vec<f64> = energy_sweep()
                .iter()
                .map(|&e| {
                    pts.iter()
                        .find(|p| p.x == e && p.algorithm == alg)
                        .unwrap()
                        .collected_gb
                })
                .collect();
            for w in series.windows(2) {
                assert!(w[1] >= w[0] - 0.05, "{alg} series not monotone: {series:?}");
            }
        }
    }

    #[test]
    fn csv_roundtrip_layout() {
        let pts = vec![DataPoint {
            x: 5.0,
            algorithm: "Algorithm 2",
            collected_gb: 1.25,
            runtime_s: 0.01,
            energy_used_j: 1000.0,
            stops: 3.0,
        }];
        let dir = std::env::temp_dir().join("uavdc_csv_test");
        let path = dir.join("fig.csv");
        write_csv(&path, "delta_m", &pts).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("delta_m,algorithm,"));
        assert!(text.contains("5,Algorithm 2,1.25,0.01,1000,3"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
