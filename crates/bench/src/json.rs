//! A minimal recursive-descent JSON parser for the bench-compare gate.
//!
//! The build environment is fully offline (DESIGN.md §11), so instead of
//! serde this module implements exactly the subset the baseline files
//! need: the full JSON grammar into an owned tree with `BTreeMap` objects
//! (deterministic iteration order, per the workspace nondeterminism
//! rule). It is a reader for trusted, repo-generated artefacts — errors
//! carry byte offsets for debugging, not resilience against adversarial
//! input.

use std::collections::BTreeMap;

/// An owned JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Stored as `f64`; the counters this repo compares
    /// stay far below 2^53, where `f64` is exact.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // lint:allow(float-ord): exactness probe — a lossless u64 round-trips bit-identically
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Why parsing failed, with the byte offset of the defect.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (rejecting trailing garbage).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs are absent from this repo's
                            // artefacts; map lone surrogates to U+FFFD
                            // rather than failing the whole compare.
                            out.push(char::from_u32(u32::from(code)).unwrap_or('\u{fffd}'));
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // slicing at char boundaries is safe).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid utf-8 in string")),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut code: u16 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => c - b'0',
                Some(c @ b'a'..=b'f') => c - b'a' + 10,
                Some(c @ b'A'..=b'F') => c - b'A' + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            code = code * 16 + u16::from(d);
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError {
            offset: start,
            message: "invalid utf-8 in number".to_string(),
        })?;
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            offset: start,
            message: format!("invalid number '{text}'"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null"), Ok(Json::Null));
        assert_eq!(parse(" true "), Ok(Json::Bool(true)));
        assert_eq!(parse("false"), Ok(Json::Bool(false)));
        assert_eq!(parse("42"), Ok(Json::Num(42.0)));
        assert_eq!(parse("-1.5e3"), Ok(Json::Num(-1500.0)));
        assert_eq!(parse("\"hi\""), Ok(Json::Str("hi".to_string())));
    }

    #[test]
    fn parses_structures() {
        let doc = parse(r#"{"a": [1, 2, {"b": null}], "c": "x\ny"}"#).expect("valid");
        assert_eq!(
            doc.get("a").and_then(|a| a.as_array()).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x\ny"));
    }

    #[test]
    fn exact_integer_extraction() {
        let v = parse("9007199254740992").expect("valid"); // 2^53
        assert_eq!(v.as_u64(), Some(1 << 53));
        assert_eq!(parse("1.5").expect("valid").as_u64(), None);
        assert_eq!(parse("-3").expect("valid").as_u64(), None);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""Aé""#).expect("valid").as_str(), Some("Aé"));
        assert_eq!(parse("\"\\u0041z\"").expect("valid").as_str(), Some("Az"));
        assert_eq!(
            parse(r#""Ax\t\"é""#).expect("valid").as_str(),
            Some("Ax\t\"é")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("true false").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn roundtrips_baseline_shape() {
        let doc = parse(
            r#"{"schema": "uavdc-planner-baseline/2", "entries": [
                {"figure": "fig4", "delta_m": 5, "seed": 39582,
                 "plans_identical": true, "plan_hash": "00ff",
                 "lazy": {"evaluations": 1234, "loop_ns": 56789}}
            ]}"#,
        )
        .expect("valid");
        let entry = &doc.get("entries").and_then(|e| e.as_array()).expect("arr")[0];
        assert_eq!(
            entry.get("plans_identical").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(
            entry
                .get("lazy")
                .and_then(|l| l.get("evaluations"))
                .and_then(Json::as_u64),
            Some(1234)
        );
    }
}
