//! Batch planning service: thousands of independent planning requests,
//! sharded across threads, sharing per-instance setup artifacts.
//!
//! A [`PlanRequest`] names an instance (generator seed at the batch's
//! scale), a battery capacity, an algorithm, and an engine. [`run_batch`]
//! executes a whole batch with the `chunked_map_with` helpers from
//! `uavdc-core` and reuses the capacity-independent setup work across
//! requests through two [`ArtifactCache`]s keyed by
//! [`Scenario::layout_fingerprint`]-derived hashes:
//!
//! * built **and pruned** [`CandidateSet`]s, keyed by (layout, `δ`) —
//!   shared by Algorithm 2 and Algorithm 3 requests;
//! * [`BenchmarkSetup`]s (coverage lists + the initial Christofides
//!   tour), keyed by layout — shared by benchmark requests.
//!
//! The cache is *invisible* to plan output: artifacts are exactly what
//! the cold path would rebuild, and the planners' `plan_prepared_obs`
//! entries run the same instructions either way, so cached and cold
//! batches produce bit-identical plans and identical deterministic
//! counters at any thread count (property-tested in
//! `tests/service_cache_invisibility.rs`). Outcomes are returned in
//! request order regardless of how chunks interleave.
//!
//! Concurrency discipline (scanned clean by `uavdc-lint` v4): worker
//! closures are pure — they read shared state (`Arc`'d scenarios, cache
//! lookups) and return values; the coordinator alone publishes artifacts,
//! in deterministic key order, before the execution phase starts. A
//! worker that ever misses the cache rebuilds the artifact locally
//! without publishing it, so a cache miss can change timing but never
//! output.
//!
//! Throughput is reported as plans/sec over the batch wall clock plus
//! p50/p99 of per-request planner latency (`setup_ns + loop_ns`, the
//! planners' own pragma-audited timers), both carried in a `uavdc-obs`
//! [`RunReport`] alongside the deterministic `service.*` counters.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;
use uavdc_core::cache::ArtifactCache;
use uavdc_core::greedy::{chunked_map_with, num_threads};
use uavdc_core::{
    Alg2Config, Alg2Planner, Alg3Config, Alg3Planner, BenchmarkPlanner, BenchmarkSetup,
    CandidateSet, EngineMode,
};
use uavdc_net::generator::{uniform, ScenarioParams};
use uavdc_net::units::Joules;
use uavdc_net::Scenario;
use uavdc_obs::{CollectingRecorder, Histogram, Recorder, RunReport};

/// Which planner a request runs (the engine-aware roster; Algorithm 1
/// plans by orienteering reduction and has no lazy/exhaustive split).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ServiceAlgorithm {
    /// Algorithm 2 with grid edge `δ`.
    Alg2 {
        /// Grid edge length, metres.
        delta: f64,
    },
    /// Algorithm 3 with grid edge `δ` and `K` sojourn partitions.
    Alg3 {
        /// Grid edge length, metres.
        delta: f64,
        /// Sojourn partitions.
        k: usize,
    },
    /// The pruning benchmark (no parameters).
    Benchmark,
}

impl ServiceAlgorithm {
    /// Legend label, matching the experiment harness.
    pub fn label(&self) -> &'static str {
        match self {
            ServiceAlgorithm::Alg2 { .. } => "Algorithm 2",
            ServiceAlgorithm::Alg3 { k: 2, .. } => "Algorithm 3 (K=2)",
            ServiceAlgorithm::Alg3 { k: 4, .. } => "Algorithm 3 (K=4)",
            ServiceAlgorithm::Alg3 { .. } => "Algorithm 3",
            ServiceAlgorithm::Benchmark => "Benchmark",
        }
    }

    /// The grid edge `δ` of candidate-grid algorithms, `None` for the
    /// benchmark (which plans over device positions directly).
    fn delta(&self) -> Option<f64> {
        match *self {
            ServiceAlgorithm::Alg2 { delta } | ServiceAlgorithm::Alg3 { delta, .. } => Some(delta),
            ServiceAlgorithm::Benchmark => None,
        }
    }
}

/// One independent planning request.
#[derive(Clone, Copy, Debug)]
pub struct PlanRequest {
    /// Instance generator seed (at the batch's scale).
    pub seed: u64,
    /// Battery capacity `E` for this request.
    pub capacity: Joules,
    /// Planner to run.
    pub algorithm: ServiceAlgorithm,
    /// Evaluation engine.
    pub engine: EngineMode,
}

/// Batch-wide settings.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Instance scale in `(0, 1]` (see `HarnessConfig::scale`).
    pub scale: f64,
    /// Worker threads; `0` resolves to `uavdc_core::greedy::num_threads()`.
    pub threads: usize,
    /// Share setup artifacts across requests. `false` is the cold
    /// reference: every request rebuilds its own setup (bit-identical
    /// output, more work).
    pub reuse_artifacts: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            scale: 1.0,
            threads: 0,
            reuse_artifacts: true,
        }
    }
}

/// Deterministic result of one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestOutcome {
    /// FNV-1a fingerprint of the produced plan.
    pub plan_hash: u64,
    /// Candidate count the planner worked with (initial tour stops for
    /// the benchmark).
    pub candidates: usize,
    /// Greedy/pruning iterations.
    pub iterations: u64,
    /// Candidate evaluations performed.
    pub evaluations: u64,
    /// Incremental tour patches applied (Algorithm 2's fast-insertion
    /// maintenance; 0 for planners that never patch a tour).
    pub tour_patches: u64,
    /// Full Christofides rebuilds (Algorithm 2's paper mode; 0
    /// elsewhere).
    pub full_retours: u64,
    /// Planner-measured latency: `setup_ns + loop_ns` (timing — the one
    /// nondeterministic field).
    pub latency_ns: u64,
}

/// Everything [`run_batch`] measured.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-request outcomes, in request order.
    pub outcomes: Vec<RequestOutcome>,
    /// Worker threads actually used.
    pub threads: usize,
    /// Distinct instances (seeds) in the batch.
    pub unique_instances: usize,
    /// Requests served from a shared artifact (beyond its first build).
    pub cache_hits: u64,
    /// Artifacts built and published by the warm-up phase.
    pub cache_misses: u64,
    /// Batch wall clock, nanoseconds (scenario generation + warm-up +
    /// execution).
    pub wall_ns: u64,
    /// Requests per wall-clock second.
    pub plans_per_sec: f64,
    /// Median per-request planner latency (log2-bucket resolution).
    pub p50_latency_ns: u64,
    /// 99th-percentile per-request planner latency.
    pub p99_latency_ns: u64,
    /// `service.*` counters plus the latency histogram as a `uavdc-obs`
    /// report.
    pub report: RunReport,
}

/// Cache key of a pruned candidate set: instance layout × grid edge.
fn candidate_key(layout_fp: u64, delta: f64) -> u64 {
    fnv_words(&[layout_fp, delta.to_bits(), 0xca4d])
}

/// Cache key of a benchmark setup: instance layout only.
fn benchmark_key(layout_fp: u64) -> u64 {
    fnv_words(&[layout_fp, 0xbe4c])
}

/// FNV-1a over a word sequence (the workspace's fingerprint primitive).
fn fnv_words(words: &[u64]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &word in words {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// Builds the pruned candidate set the planners' cold path would build
/// for this scenario and `δ` (the artifact the cache's invisibility
/// contract promises).
fn build_candidates(scenario: &Scenario, delta: f64) -> CandidateSet {
    let mut c = CandidateSet::build(scenario, delta);
    c.prune_dominated();
    c
}

/// Runs one request against its base scenario and (possibly cached)
/// setup artifacts. `cand`/`bench` are `None` on a cache miss or in cold
/// mode — the planner then rebuilds setup itself, which is the same
/// computation.
fn run_one(
    req: &PlanRequest,
    base: &Scenario,
    cand: Option<&CandidateSet>,
    bench: Option<&BenchmarkSetup>,
) -> RequestOutcome {
    let mut scenario = base.clone();
    scenario.uav.capacity = req.capacity;
    let (plan, stats) = match req.algorithm {
        ServiceAlgorithm::Alg2 { delta } => Alg2Planner::new(Alg2Config {
            delta,
            engine: req.engine,
            ..Alg2Config::default()
        })
        .plan_prepared_obs(&scenario, cand, &uavdc_obs::NOOP),
        ServiceAlgorithm::Alg3 { delta, k } => Alg3Planner::new(Alg3Config {
            delta,
            k,
            engine: req.engine,
            ..Alg3Config::default()
        })
        .plan_prepared_obs(&scenario, cand, &uavdc_obs::NOOP),
        ServiceAlgorithm::Benchmark => {
            BenchmarkPlanner.plan_prepared_obs(&scenario, req.engine, bench, &uavdc_obs::NOOP)
        }
    };
    RequestOutcome {
        plan_hash: plan.fingerprint(),
        candidates: stats.counters.candidates,
        iterations: stats.counters.iterations,
        evaluations: stats.counters.evaluations,
        tour_patches: stats.counters.tour_patches,
        full_retours: stats.counters.full_retours,
        latency_ns: stats.setup_ns + stats.loop_ns,
    }
}

/// Executes a request batch and reports outcomes plus throughput.
///
/// Three phases, each sharded with `chunked_map_with` (chunk-ordered
/// deterministic merge): generate the distinct base scenarios; build the
/// distinct missing artifacts (warm-up — skipped when
/// `cfg.reuse_artifacts` is off); execute every request against the
/// warmed caches. Worker closures only read shared state; all cache
/// publication happens on the coordinator between phases, in key order.
pub fn run_batch(cfg: &ServiceConfig, requests: &[PlanRequest]) -> BatchReport {
    let threads = if cfg.threads == 0 {
        num_threads()
    } else {
        cfg.threads
    };
    let started = Instant::now();
    let params = ScenarioParams::default().scaled(cfg.scale);

    // Phase 1: distinct base scenarios (capacity is applied per request,
    // so one scenario per seed suffices).
    let seeds: Vec<u64> = {
        let set: std::collections::BTreeSet<u64> = requests.iter().map(|r| r.seed).collect();
        set.into_iter().collect()
    };
    let built = chunked_map_with(&seeds, threads, |&seed| Arc::new(uniform(&params, seed)));
    let scenarios: BTreeMap<u64, Arc<Scenario>> = seeds.iter().copied().zip(built).collect();
    let layout_of: BTreeMap<u64, u64> = scenarios
        .iter()
        .map(|(&seed, s)| (seed, s.layout_fingerprint()))
        .collect();

    // Phase 2: warm the artifact caches with every key the batch needs,
    // building distinct artifacts in parallel and publishing them from
    // this coordinator thread in deterministic key order.
    let cand_cache: ArtifactCache<CandidateSet> = ArtifactCache::new();
    let bench_cache: ArtifactCache<BenchmarkSetup> = ArtifactCache::new();
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    if cfg.reuse_artifacts {
        let mut cand_jobs: BTreeMap<u64, (u64, f64)> = BTreeMap::new();
        let mut bench_jobs: BTreeMap<u64, u64> = BTreeMap::new();
        for req in requests {
            let Some(&layout) = layout_of.get(&req.seed) else {
                continue; // unreachable: layout_of covers every request seed
            };
            match req.algorithm.delta() {
                Some(delta) => {
                    let key = candidate_key(layout, delta);
                    if cand_jobs.insert(key, (req.seed, delta)).is_some() {
                        cache_hits += 1;
                    }
                }
                None => {
                    let key = benchmark_key(layout);
                    if bench_jobs.insert(key, req.seed).is_some() {
                        cache_hits += 1;
                    }
                }
            }
        }
        cache_misses = (cand_jobs.len() + bench_jobs.len()) as u64;
        let cand_list: Vec<(u64, u64, f64)> = cand_jobs
            .into_iter()
            .map(|(key, (seed, delta))| (key, seed, delta))
            .collect();
        let cand_built = chunked_map_with(&cand_list, threads, |&(_, seed, delta)| {
            scenarios.get(&seed).map(|s| build_candidates(s, delta))
        });
        for ((key, _, _), artifact) in cand_list.iter().zip(cand_built) {
            if let Some(a) = artifact {
                cand_cache.insert(*key, a);
            }
        }
        let bench_list: Vec<(u64, u64)> = bench_jobs.into_iter().collect();
        let bench_built = chunked_map_with(&bench_list, threads, |&(_, seed)| {
            scenarios.get(&seed).map(|s| BenchmarkSetup::build(s))
        });
        for ((key, _), artifact) in bench_list.iter().zip(bench_built) {
            if let Some(a) = artifact {
                bench_cache.insert(*key, a);
            }
        }
    }

    // Phase 3: execute every request. Workers read the warmed caches
    // concurrently (an `Arc` clone per hit); a miss — cold mode, or a
    // seed the warm-up somehow skipped — rebuilds locally without
    // publishing, so it is slower but bit-identical.
    let outcomes = chunked_map_with(requests, threads, |req| {
        let fallback;
        let base = match scenarios.get(&req.seed) {
            Some(s) => s,
            None => {
                fallback = Arc::new(uniform(&params, req.seed));
                &fallback
            }
        };
        let layout = base.layout_fingerprint();
        match req.algorithm.delta() {
            Some(delta) => {
                let local;
                let cand = match cand_cache.get(candidate_key(layout, delta)) {
                    Some(a) => a,
                    None => {
                        local = Arc::new(build_candidates(base, delta));
                        local
                    }
                };
                run_one(req, base, Some(&cand), None)
            }
            None => {
                let local;
                let bench = match bench_cache.get(benchmark_key(layout)) {
                    Some(a) => a,
                    None => {
                        local = Arc::new(BenchmarkSetup::build(base));
                        local
                    }
                };
                run_one(req, base, None, Some(&bench))
            }
        }
    });

    // Aggregate on the coordinator: latency percentiles at log2-bucket
    // resolution, throughput over the batch wall clock, and the obs
    // report carrying both next to the deterministic service counters.
    let wall_ns = started.elapsed().as_nanos() as u64;
    let mut latency = Histogram::new();
    for o in &outcomes {
        latency.record(o.latency_ns);
    }
    let p50_latency_ns = latency.percentile(0.50);
    let p99_latency_ns = latency.percentile(0.99);
    let plans_per_sec = outcomes.len() as f64 / (wall_ns.max(1) as f64 / 1e9);
    let rec = CollectingRecorder::new();
    rec.add("service.requests", outcomes.len() as u64);
    rec.add("service.unique_instances", scenarios.len() as u64);
    rec.add("service.threads", threads as u64);
    rec.add("service.cache_hits", cache_hits);
    rec.add("service.cache_misses", cache_misses);
    for o in &outcomes {
        rec.observe("service.latency_ns", o.latency_ns);
    }
    BatchReport {
        threads,
        unique_instances: scenarios.len(),
        cache_hits,
        cache_misses,
        wall_ns,
        plans_per_sec,
        p50_latency_ns,
        p99_latency_ns,
        report: rec.report(),
        outcomes,
    }
}

/// The standard request grid the `service_baseline` artifact commits:
/// every seed × the paper's battery sweep × the engine-aware roster
/// (δ = 10 m) × both engines, replicated `repeat` times (replicas model
/// independent clients asking for the same plan — pure cache hits).
pub fn standard_grid(seeds: &[u64], repeat: usize) -> Vec<PlanRequest> {
    let algorithms = [
        ServiceAlgorithm::Alg2 { delta: 10.0 },
        ServiceAlgorithm::Alg3 { delta: 10.0, k: 2 },
        ServiceAlgorithm::Alg3 { delta: 10.0, k: 4 },
        ServiceAlgorithm::Benchmark,
    ];
    let mut out = Vec::new();
    for _ in 0..repeat.max(1) {
        for &seed in seeds {
            for &e in &crate::energy_sweep() {
                for &algorithm in &algorithms {
                    for engine in [EngineMode::Lazy, EngineMode::Exhaustive] {
                        out.push(PlanRequest {
                            seed,
                            capacity: Joules(e),
                            algorithm,
                            engine,
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_batch() -> Vec<PlanRequest> {
        let mut reqs = Vec::new();
        for seed in [11u64, 12] {
            for cap in [3.0e5, 6.0e5] {
                for algorithm in [
                    ServiceAlgorithm::Alg2 { delta: 20.0 },
                    ServiceAlgorithm::Alg3 { delta: 20.0, k: 2 },
                    ServiceAlgorithm::Benchmark,
                ] {
                    for engine in [EngineMode::Lazy, EngineMode::Exhaustive] {
                        reqs.push(PlanRequest {
                            seed,
                            capacity: Joules(cap),
                            algorithm,
                            engine,
                        });
                    }
                }
            }
        }
        reqs
    }

    fn cfg(reuse: bool, threads: usize) -> ServiceConfig {
        ServiceConfig {
            scale: 0.05,
            threads,
            reuse_artifacts: reuse,
        }
    }

    #[test]
    fn cached_equals_cold_bit_for_bit() {
        let reqs = tiny_batch();
        let warm = run_batch(&cfg(true, 2), &reqs);
        let cold = run_batch(&cfg(false, 2), &reqs);
        assert_eq!(warm.outcomes.len(), reqs.len());
        for (i, (w, c)) in warm.outcomes.iter().zip(&cold.outcomes).enumerate() {
            assert_eq!(w.plan_hash, c.plan_hash, "request {i}");
            assert_eq!(w.evaluations, c.evaluations, "request {i}");
            assert_eq!(w.iterations, c.iterations, "request {i}");
            assert_eq!(w.candidates, c.candidates, "request {i}");
        }
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(cold.cache_misses, 0);
    }

    #[test]
    fn cache_accounting_is_deterministic() {
        let reqs = tiny_batch();
        let report = run_batch(&cfg(true, 1), &reqs);
        // 2 seeds × {candidates@δ20, benchmark setup} = 4 distinct
        // artifacts; every other request shares one.
        assert_eq!(report.cache_misses, 4);
        assert_eq!(report.cache_hits, reqs.len() as u64 - 4);
        assert_eq!(report.unique_instances, 2);
        assert_eq!(report.report.counter("service.cache_misses"), 4);
        assert_eq!(report.report.counter("service.requests"), reqs.len() as u64);
    }

    #[test]
    fn thread_count_does_not_change_outcomes() {
        let reqs = tiny_batch();
        let one = run_batch(&cfg(true, 1), &reqs);
        let four = run_batch(&cfg(true, 4), &reqs);
        let det = |r: &BatchReport| -> Vec<(u64, usize, u64, u64)> {
            r.outcomes
                .iter()
                .map(|o| (o.plan_hash, o.candidates, o.iterations, o.evaluations))
                .collect()
        };
        assert_eq!(det(&one), det(&four));
        assert_eq!(one.cache_hits, four.cache_hits);
        assert_eq!(one.cache_misses, four.cache_misses);
    }

    #[test]
    fn percentiles_come_from_recorded_latencies() {
        let reqs = tiny_batch();
        let report = run_batch(&cfg(true, 2), &reqs);
        let hist = report
            .report
            .histograms
            .iter()
            .find(|h| h.name == "service.latency_ns")
            .expect("latency histogram recorded");
        assert_eq!(hist.count, reqs.len() as u64);
        assert_eq!(hist.percentile(0.50), report.p50_latency_ns);
        assert_eq!(hist.percentile(0.99), report.p99_latency_ns);
        assert!(report.p50_latency_ns <= report.p99_latency_ns);
        assert!(report.plans_per_sec > 0.0);
    }

    #[test]
    fn standard_grid_shape() {
        let grid = standard_grid(&[1, 2], 3);
        // 3 repeats × 2 seeds × 5 capacities × 4 algorithms × 2 engines.
        assert_eq!(grid.len(), 3 * 2 * 5 * 4 * 2);
    }
}
