//! Throughput baseline for the batch planning service.
//!
//! Runs the standard request grid (seeds × the paper's battery sweep ×
//! the engine-aware roster × both engines, replicated) through
//! [`uavdc_bench::service::run_batch`] and writes `BENCH_service.json`:
//! plans/sec and p50/p99 planner latency over the batch wall clock, the
//! artifact-cache hit accounting, and one deterministic entry (counters
//! plus plan hash) per unique request tuple. Replicas of the same tuple
//! must produce bit-identical outcomes — the run aborts otherwise.
//!
//! ```text
//! cargo run --release -p uavdc-bench --bin service_baseline             # full baseline
//! cargo run --release -p uavdc-bench --bin service_baseline -- --quick  # CI smoke
//! cargo run --release -p uavdc-bench --bin service_baseline -- --quick --check
//! ```
//!
//! `--check` re-runs the batch cold (artifact reuse off) and again on a
//! single thread, and exits non-zero unless both replays are
//! bit-identical to the cached multi-threaded run — the CI tripwire for
//! the cache-invisibility contract. `--out PATH` overrides the output
//! path (default `BENCH_service.json` in the working directory).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;
use uavdc_bench::service::{run_batch, standard_grid, BatchReport, PlanRequest, ServiceConfig};
use uavdc_core::EngineMode;

fn engine_label(e: EngineMode) -> &'static str {
    match e {
        EngineMode::Lazy => "lazy",
        EngineMode::Exhaustive => "exhaustive",
    }
}

/// Deduplication key of a request tuple: every request with the same key
/// must produce the same outcome, whatever the cache or thread count did.
fn request_key(r: &PlanRequest) -> (u64, u64, &'static str, &'static str) {
    (
        r.seed,
        r.capacity.0.to_bits(),
        r.algorithm.label(),
        engine_label(r.engine),
    )
}

/// One unique request tuple with its (replica-checked) outcome.
struct Entry {
    seed: u64,
    capacity_j: f64,
    algorithm: &'static str,
    engine: &'static str,
    candidates: usize,
    iterations: u64,
    evaluations: u64,
    plan_hash: u64,
}

/// Collapses per-request outcomes to one entry per unique tuple,
/// aborting if any replica diverged (the service's determinism promise).
fn dedupe(requests: &[PlanRequest], report: &BatchReport) -> Vec<Entry> {
    let mut seen: BTreeMap<(u64, u64, &str, &str), usize> = BTreeMap::new();
    let mut entries = Vec::new();
    for (req, outcome) in requests.iter().zip(&report.outcomes) {
        let key = request_key(req);
        match seen.get(&key) {
            Some(&idx) => {
                let first: &Entry = &entries[idx];
                if first.plan_hash != outcome.plan_hash
                    || first.evaluations != outcome.evaluations
                    || first.iterations != outcome.iterations
                    || first.candidates != outcome.candidates
                {
                    eprintln!(
                        "REPLICA DIVERGED: seed {} capacity {} {} {}",
                        req.seed,
                        req.capacity.0,
                        req.algorithm.label(),
                        engine_label(req.engine)
                    );
                    std::process::exit(1);
                }
            }
            None => {
                seen.insert(key, entries.len());
                entries.push(Entry {
                    seed: req.seed,
                    capacity_j: req.capacity.0,
                    algorithm: req.algorithm.label(),
                    engine: engine_label(req.engine),
                    candidates: outcome.candidates,
                    iterations: outcome.iterations,
                    evaluations: outcome.evaluations,
                    plan_hash: outcome.plan_hash,
                });
            }
        }
    }
    entries
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_string()
    }
}

fn render_json(
    entries: &[Entry],
    report: &BatchReport,
    mode: &str,
    scale: f64,
    seeds: &[u64],
    repeat: usize,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"uavdc-service-baseline/1\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"scale\": {scale},");
    let _ = writeln!(
        out,
        "  \"seeds\": [{}],",
        seeds
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "  \"repeat\": {repeat},");
    let _ = writeln!(out, "  \"threads\": {},", report.threads);
    out.push_str("  \"throughput\": {\n");
    let _ = writeln!(out, "    \"requests\": {},", report.outcomes.len());
    let _ = writeln!(out, "    \"wall_ns\": {},", report.wall_ns);
    let _ = writeln!(
        out,
        "    \"plans_per_sec\": {},",
        json_f64(report.plans_per_sec)
    );
    let _ = writeln!(out, "    \"p50_latency_ns\": {},", report.p50_latency_ns);
    let _ = writeln!(out, "    \"p99_latency_ns\": {}", report.p99_latency_ns);
    out.push_str("  },\n");
    out.push_str("  \"cache\": {\n");
    let _ = writeln!(
        out,
        "    \"unique_instances\": {},",
        report.unique_instances
    );
    let _ = writeln!(out, "    \"artifacts_built\": {},", report.cache_misses);
    let _ = writeln!(out, "    \"requests_shared\": {}", report.cache_hits);
    out.push_str("  },\n");
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"figure\": \"service\", \"capacity_j\": {}, \"algorithm\": \"{}\", \
             \"seed\": {}, \"engine\": \"{}\", \"candidates\": {}, \"iterations\": {}, \
             \"evaluations\": {}, \"plan_hash\": \"{:016x}\"}}{}",
            e.capacity_j,
            e.algorithm,
            e.seed,
            e.engine,
            e.candidates,
            e.iterations,
            e.evaluations,
            e.plan_hash,
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Compares two batch runs on their deterministic outcome fields; prints
/// and counts divergences.
fn diff_runs(label: &str, requests: &[PlanRequest], a: &BatchReport, b: &BatchReport) -> usize {
    let mut bad = 0;
    for ((req, x), y) in requests.iter().zip(&a.outcomes).zip(&b.outcomes) {
        if x.plan_hash != y.plan_hash
            || x.evaluations != y.evaluations
            || x.iterations != y.iterations
            || x.candidates != y.candidates
        {
            bad += 1;
            if bad <= 10 {
                eprintln!(
                    "{label} DIVERGED: seed {} capacity {} {} {}",
                    req.seed,
                    req.capacity.0,
                    req.algorithm.label(),
                    engine_label(req.engine)
                );
            }
        }
    }
    bad
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let mut out_path = "BENCH_service.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" | "--check" => {}
            "--out" if i + 1 < args.len() => {
                i += 1;
                out_path = args[i].clone();
            }
            bad => {
                eprintln!("unknown argument: {bad}");
                eprintln!("usage: service_baseline [--quick] [--check] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let (mode, scale, seeds, repeat): (&str, f64, Vec<u64>, usize) = if quick {
        ("quick", 0.2, vec![0x9a9e, 0x9a9f], 2)
    } else {
        ("full", 0.4, vec![0x9a9e, 0x9a9f, 0x9aa0], 10)
    };
    let requests = standard_grid(&seeds, repeat);
    let cfg = ServiceConfig {
        scale,
        threads: 0,
        reuse_artifacts: true,
    };

    let started = Instant::now();
    let report = run_batch(&cfg, &requests);
    eprintln!(
        "service_baseline: {} requests in {:.2}s on {} threads (mode {mode}, scale {scale}): \
         {:.1} plans/sec, p50 {:.2} ms, p99 {:.2} ms, {} artifacts built, {} requests shared",
        requests.len(),
        started.elapsed().as_secs_f64(),
        report.threads,
        report.plans_per_sec,
        report.p50_latency_ns as f64 / 1e6,
        report.p99_latency_ns as f64 / 1e6,
        report.cache_misses,
        report.cache_hits
    );

    let entries = dedupe(&requests, &report);
    let json = render_json(&entries, &report, mode, scale, &seeds, repeat);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path} ({} unique entries)", entries.len());

    // Console digest: per-algorithm evaluation totals across the grid.
    let mut algs: Vec<&str> = entries.iter().map(|e| e.algorithm).collect();
    algs.sort_unstable();
    algs.dedup();
    for alg in algs {
        let (evals, iters, n) = entries
            .iter()
            .filter(|e| e.algorithm == alg)
            .fold((0u64, 0u64, 0usize), |(ev, it, n), e| {
                (ev + e.evaluations, it + e.iterations, n + 1)
            });
        eprintln!("  {alg:<18} {n:>3} tuples  evaluations {evals:>9}  iterations {iters:>6}");
    }

    if check {
        let cold = run_batch(
            &ServiceConfig {
                reuse_artifacts: false,
                ..cfg
            },
            &requests,
        );
        let single = run_batch(&ServiceConfig { threads: 1, ..cfg }, &requests);
        let bad = diff_runs("cold", &requests, &report, &cold)
            + diff_runs("single-thread", &requests, &report, &single);
        if bad > 0 {
            eprintln!("check FAILED: {bad} outcomes diverged across replays");
            std::process::exit(1);
        }
        eprintln!(
            "check passed: cold and single-thread replays bit-identical across {} requests",
            requests.len()
        );
    }
}
