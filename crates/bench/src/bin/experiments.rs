//! Experiment runner reproducing the paper's figures.
//!
//! ```text
//! experiments <fig3|fig4|fig5|all> [--scale S] [--instances N] [--seed B]
//!             [--serial] [--no-sim-check] [--out DIR]
//! ```
//!
//! `--scale 1.0` (default) is the paper's full setting: 500 devices in
//! 1000 m × 1000 m averaged over 15 instances. Use `--scale 0.2
//! --instances 3` for a quick look. Tables print to stdout; CSVs land in
//! `--out` (default `results/`).

use std::path::PathBuf;
use std::process::exit;
use uavdc_bench::{
    print_table, run_fig3, run_fig4, run_fig5, run_fleet_sweep, run_hover_sweep, run_wind_sweep,
    write_csv, HarnessConfig,
};

fn usage() -> ! {
    eprintln!(
        "usage: experiments <fig3|fig4|fig5|hover|wind|fleet|all|extras> [--scale S] \
         [--instances N] [--seed B] [--serial] [--no-sim-check] [--out DIR]"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let which = args[0].clone();
    let mut cfg = HarnessConfig::default();
    let mut out_dir = PathBuf::from("results");
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                cfg.scale = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--instances" => {
                cfg.num_instances = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--seed" => {
                cfg.base_seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--serial" => {
                cfg.parallel_instances = false;
                i += 1;
            }
            "--no-sim-check" => {
                cfg.simulate_check = false;
                i += 1;
            }
            "--out" => {
                out_dir = PathBuf::from(args.get(i + 1).unwrap_or_else(|| usage()));
                i += 2;
            }
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    println!(
        "# config: scale={} instances={} seed={} parallel={} sim-check={}",
        cfg.scale, cfg.num_instances, cfg.base_seed, cfg.parallel_instances, cfg.simulate_check
    );

    let run_3 = which == "fig3" || which == "all";
    let run_4 = which == "fig4" || which == "all";
    let run_5 = which == "fig5" || which == "all";
    let run_hover = which == "hover" || which == "extras";
    let run_wind = which == "wind" || which == "extras";
    let run_fleet = which == "fleet" || which == "extras";
    if !(run_3 || run_4 || run_5 || run_hover || run_wind || run_fleet) {
        usage();
    }
    if run_3 {
        let pts = run_fig3(&cfg);
        print_table("Fig. 3 — no coverage overlap, battery sweep", "E (J)", &pts);
        write_csv(&out_dir.join("fig3.csv"), "energy_j", &pts).expect("write fig3.csv");
    }
    if run_4 {
        let pts = run_fig4(&cfg);
        print_table("Fig. 4 — δ sweep at E = 3e5 J", "δ (m)", &pts);
        write_csv(&out_dir.join("fig4.csv"), "delta_m", &pts).expect("write fig4.csv");
    }
    if run_5 {
        let pts = run_fig5(&cfg);
        print_table("Fig. 5 — battery sweep at δ = 10 m", "E (J)", &pts);
        write_csv(&out_dir.join("fig5.csv"), "energy_j", &pts).expect("write fig5.csv");
    }
    if run_hover {
        let pts = run_hover_sweep(&cfg);
        print_table(
            "Supplementary — bandwidth sweep (hover-dominated regime)",
            "B (MB/s)",
            &pts,
        );
        write_csv(&out_dir.join("hover.csv"), "bandwidth_mbps", &pts).expect("write hover.csv");
    }
    if run_wind {
        let pts = run_wind_sweep(&cfg);
        print_table(
            "Supplementary — battery margin vs wind (stops column = completion %)",
            "margin",
            &pts,
        );
        write_csv(&out_dir.join("wind.csv"), "margin", &pts).expect("write wind.csv");
    }
    if run_fleet {
        let pts = run_fleet_sweep(&cfg);
        print_table(
            "Supplementary — fleet scaling (energy column = busiest UAV)",
            "UAVs",
            &pts,
        );
        write_csv(&out_dir.join("fleet.csv"), "fleet_size", &pts).expect("write fleet.csv");
    }
    println!("\nCSV written to {}", out_dir.display());
}
