//! Perf baseline for the lazy-greedy planner engine.
//!
//! Runs Algorithm 2, Algorithm 3 (K ∈ {2, 4}) and the benchmark pruner
//! with both [`EngineMode::Lazy`] and [`EngineMode::Exhaustive`] across
//! the paper's fig-3/4/5 sweeps, and writes `BENCH_planner.json`:
//! candidates, iterations, evaluations performed vs. the `M × iterations`
//! exhaustive bound, and wall-nanoseconds per phase. Every run also
//! cross-checks that the two engines produced bit-identical plans.
//!
//! ```text
//! cargo run --release -p uavdc-bench --bin planner_baseline             # full baseline
//! cargo run --release -p uavdc-bench --bin planner_baseline -- --quick  # CI smoke
//! cargo run --release -p uavdc-bench --bin planner_baseline -- --quick --check
//! ```
//!
//! `--check` exits non-zero when any lazy run diverged from its
//! exhaustive twin or performed more evaluations than the exhaustive
//! bound — the CI regression tripwire. `--min-alg2-speedup X` addition-
//! ally floors Algorithm 2's aggregate fig-4 δ = 5 m wall speedup (the
//! incremental-tour perf gate; exits non-zero below `X`). `--out PATH`
//! overrides the output path (default `BENCH_planner.json` in the
//! working directory).
//!
//! Set `UAVDC_OBS=1` to attach a [`uavdc_obs`] collecting recorder to
//! every lazy run and embed its `RunReport` (spans, counters, histograms)
//! as an `"obs"` object per entry. `--obs-overhead` instead measures the
//! wall-clock cost of that recorder on the fig-4 δ = 5 m sweep point and
//! prints the relative overhead (the <3 % budget in DESIGN.md §10).

use std::fmt::Write as _;
use std::time::Instant;
use uavdc_bench::{delta_sweep, energy_sweep};
use uavdc_core::{
    Alg2Config, Alg2Planner, Alg3Config, Alg3Planner, BenchmarkPlanner, CollectionPlan, EngineMode,
    PlanStats,
};
use uavdc_net::generator::{uniform, ScenarioParams};
use uavdc_net::units::Joules;
use uavdc_net::Scenario;
use uavdc_obs::{CollectingRecorder, Recorder};

/// One planner × sweep-point × seed measurement (both engines).
struct Entry {
    figure: &'static str,
    x_label: &'static str,
    x: f64,
    algorithm: &'static str,
    seed: u64,
    lazy: PlanStats,
    exhaustive: PlanStats,
    plans_identical: bool,
    /// FNV-1a fingerprint of the lazy plan (hex in the JSON).
    plan_hash: u64,
    /// Single-line `RunReport` JSON for the lazy run, when `UAVDC_OBS`
    /// was set.
    obs: Option<String>,
}

impl Entry {
    fn eval_reduction(&self) -> f64 {
        self.exhaustive.counters.evaluations as f64 / self.lazy.counters.evaluations.max(1) as f64
    }

    fn wall_speedup(&self) -> f64 {
        self.exhaustive.loop_ns as f64 / self.lazy.loop_ns.max(1) as f64
    }

    fn within_bound(&self) -> bool {
        self.lazy.counters.evaluations <= self.lazy.counters.exhaustive_bound()
    }
}

fn measure(
    figure: &'static str,
    x_label: &'static str,
    x: f64,
    algorithm: &'static str,
    seed: u64,
    scenario: &Scenario,
    run: impl Fn(&Scenario, EngineMode, &dyn Recorder) -> (CollectionPlan, PlanStats),
) -> Entry {
    // Only the lazy run is recorded: it is the engine the baseline
    // gates, and the exhaustive twin's counters are already in the
    // entry. Recording is per-entry so each sweep point gets its own
    // report.
    let (plan_lazy, lazy, obs) = if uavdc_obs::env_enabled() {
        let rec = CollectingRecorder::new();
        let (plan, stats) = run(scenario, EngineMode::Lazy, &rec);
        let report = rec.report().to_json();
        (plan, stats, Some(report))
    } else {
        let (plan, stats) = run(scenario, EngineMode::Lazy, &uavdc_obs::NOOP);
        (plan, stats, None)
    };
    let (plan_full, exhaustive) = run(scenario, EngineMode::Exhaustive, &uavdc_obs::NOOP);
    Entry {
        figure,
        x_label,
        x,
        algorithm,
        seed,
        plans_identical: plan_lazy == plan_full,
        plan_hash: plan_lazy.fingerprint(),
        lazy,
        exhaustive,
        obs,
    }
}

/// A labelled planner closure running with a chosen engine and recorder.
type PlannerRun = (
    &'static str,
    Box<dyn Fn(&Scenario, EngineMode, &dyn Recorder) -> (CollectionPlan, PlanStats)>,
);

/// The fig-4/5 planner roster (engine-aware planners only; Algorithm 1
/// plans by orienteering reduction and has no greedy loop to compare).
fn overlap_roster(delta: f64) -> Vec<PlannerRun> {
    vec![
        (
            "Algorithm 2",
            Box::new(move |s: &Scenario, engine, rec: &dyn Recorder| {
                Alg2Planner::new(Alg2Config {
                    delta,
                    engine,
                    ..Alg2Config::default()
                })
                .plan_with_stats_obs(s, rec)
            }),
        ),
        (
            "Algorithm 3 (K=2)",
            Box::new(move |s: &Scenario, engine, rec: &dyn Recorder| {
                Alg3Planner::new(Alg3Config {
                    delta,
                    k: 2,
                    engine,
                    ..Alg3Config::default()
                })
                .plan_with_stats_obs(s, rec)
            }),
        ),
        (
            "Algorithm 3 (K=4)",
            Box::new(move |s: &Scenario, engine, rec: &dyn Recorder| {
                Alg3Planner::new(Alg3Config {
                    delta,
                    k: 4,
                    engine,
                    ..Alg3Config::default()
                })
                .plan_with_stats_obs(s, rec)
            }),
        ),
        (
            "Benchmark",
            Box::new(|s: &Scenario, engine, rec: &dyn Recorder| {
                BenchmarkPlanner.plan_with_stats_obs(s, engine, rec)
            }),
        ),
    ]
}

fn run_sweeps(scale: f64, seeds: &[u64]) -> Vec<Entry> {
    let mut entries = Vec::new();

    // Fig. 3: battery sweep, no-overlap problem — only the benchmark
    // pruner has a greedy loop here.
    for &e in &energy_sweep() {
        let params = ScenarioParams::default()
            .scaled(scale)
            .with_capacity(Joules(e));
        for &seed in seeds {
            let scenario = uniform(&params, seed);
            entries.push(measure(
                "fig3",
                "capacity_j",
                e,
                "Benchmark",
                seed,
                &scenario,
                |s, engine, rec| BenchmarkPlanner.plan_with_stats_obs(s, engine, rec),
            ));
        }
    }

    // Fig. 4: grid sweep at the default battery.
    for &delta in &delta_sweep() {
        let params = ScenarioParams::default().scaled(scale);
        for &seed in seeds {
            let scenario = uniform(&params, seed);
            for (label, run) in overlap_roster(delta) {
                entries.push(measure(
                    "fig4", "delta_m", delta, label, seed, &scenario, run,
                ));
            }
        }
    }

    // Fig. 5: battery sweep at δ = 10 m.
    for &e in &energy_sweep() {
        let params = ScenarioParams::default()
            .scaled(scale)
            .with_capacity(Joules(e));
        for &seed in seeds {
            let scenario = uniform(&params, seed);
            for (label, run) in overlap_roster(10.0) {
                entries.push(measure(
                    "fig5",
                    "capacity_j",
                    e,
                    label,
                    seed,
                    &scenario,
                    run,
                ));
            }
        }
    }

    entries
}

fn stats_json(s: &PlanStats) -> String {
    let c = &s.counters;
    format!(
        concat!(
            "{{\"evaluations\":{},\"marginal_evals\":{},\"delta_rescans\":{},",
            "\"fixups\":{},\"heap_pops\":{},\"tour_patches\":{},",
            "\"full_retours\":{},\"setup_ns\":{},\"loop_ns\":{}}}"
        ),
        c.evaluations,
        c.marginal_evals,
        c.delta_rescans,
        c.fixups,
        c.heap_pops,
        c.tour_patches,
        c.full_retours,
        s.setup_ns,
        s.loop_ns
    )
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Aggregate fig-4 δ = 5 m wall speedup of one algorithm: the per-PR
/// perf gate metric (`--min-alg2-speedup` floors Algorithm 2's).
fn fig4_delta5_speedup(entries: &[Entry], algorithm: &str) -> f64 {
    let (_, _, ln, en) = aggregate(entries.iter().filter(|e| {
        // lint:allow(float-ord): sweep coordinates are exact literals carried through unmodified
        e.figure == "fig4" && e.x == 5.0 && e.algorithm == algorithm
    }));
    en as f64 / ln.max(1) as f64
}

/// Aggregate over a filtered subset: (lazy evals, exhaustive evals,
/// lazy loop-ns, exhaustive loop-ns).
fn aggregate<'a>(entries: impl Iterator<Item = &'a Entry>) -> (u64, u64, u64, u64) {
    let mut acc = (0u64, 0u64, 0u64, 0u64);
    for e in entries {
        acc.0 += e.lazy.counters.evaluations;
        acc.1 += e.exhaustive.counters.evaluations;
        acc.2 += e.lazy.loop_ns;
        acc.3 += e.exhaustive.loop_ns;
    }
    acc
}

fn render_json(entries: &[Entry], mode: &str, scale: f64, seeds: &[u64]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"uavdc-planner-baseline/3\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"scale\": {scale},");
    let _ = writeln!(
        out,
        "  \"seeds\": [{}],",
        seeds
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "  \"threads\": {},", uavdc_core::greedy::num_threads());

    // Headline: the fig-4 δ = 5 m sweep point (the paper's largest
    // candidate sets), aggregated across its four algorithms and all
    // seeds — the acceptance gate of the lazy engine.
    // lint:allow(float-ord): sweep coordinates are exact literals carried through unmodified
    let (le, ee, ln, en) = aggregate(entries.iter().filter(|e| e.figure == "fig4" && e.x == 5.0));
    out.push_str("  \"headline_fig4_delta5\": {\n");
    let _ = writeln!(out, "    \"lazy_evaluations\": {le},");
    let _ = writeln!(out, "    \"exhaustive_evaluations\": {ee},");
    let _ = writeln!(
        out,
        "    \"eval_reduction\": {},",
        json_f64(ee as f64 / le.max(1) as f64)
    );
    let _ = writeln!(out, "    \"lazy_loop_ns\": {ln},");
    let _ = writeln!(out, "    \"exhaustive_loop_ns\": {en},");
    let _ = writeln!(
        out,
        "    \"wall_speedup\": {},",
        json_f64(en as f64 / ln.max(1) as f64)
    );
    let _ = writeln!(
        out,
        "    \"alg2_wall_speedup\": {}",
        json_f64(fig4_delta5_speedup(entries, "Algorithm 2"))
    );
    out.push_str("  },\n");

    // Per-algorithm aggregate across everything, for trend tracking.
    out.push_str("  \"by_algorithm\": {\n");
    let mut algs: Vec<&str> = entries.iter().map(|e| e.algorithm).collect();
    algs.sort_unstable();
    algs.dedup();
    for (i, alg) in algs.iter().enumerate() {
        let (le, ee, ln, en) = aggregate(entries.iter().filter(|e| e.algorithm == *alg));
        let _ = writeln!(
            out,
            "    \"{alg}\": {{\"lazy_evaluations\": {le}, \"exhaustive_evaluations\": {ee}, \
             \"eval_reduction\": {}, \"wall_speedup\": {}}}{}",
            json_f64(ee as f64 / le.max(1) as f64),
            json_f64(en as f64 / ln.max(1) as f64),
            if i + 1 < algs.len() { "," } else { "" }
        );
    }
    out.push_str("  },\n");

    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let obs_field = match &e.obs {
            Some(report) => format!(", \"obs\": {report}"),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "    {{\"figure\": \"{}\", \"{}\": {}, \"algorithm\": \"{}\", \"seed\": {}, \
             \"candidates\": {}, \"iterations\": {}, \"exhaustive_bound\": {}, \
             \"eval_reduction\": {}, \"wall_speedup\": {}, \"plans_identical\": {}, \
             \"plan_hash\": \"{:016x}\", \"lazy\": {}, \"exhaustive\": {}{}}}{}",
            e.figure,
            e.x_label,
            e.x,
            e.algorithm,
            e.seed,
            e.lazy.counters.candidates,
            e.lazy.counters.iterations,
            e.lazy.counters.exhaustive_bound(),
            json_f64(e.eval_reduction()),
            json_f64(e.wall_speedup()),
            e.plans_identical,
            e.plan_hash,
            stats_json(&e.lazy),
            stats_json(&e.exhaustive),
            obs_field,
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Measures the enabled-recorder overhead on the headline fig-4 δ = 5 m
/// sweep point at full scale: every roster planner runs its lazy engine
/// once with the no-op recorder and once with a collecting recorder, and
/// the aggregate loop-wall-clock ratio is printed. Exits non-zero when
/// the overhead exceeds `budget_pct`.
fn obs_overhead(budget_pct: f64) {
    let params = ScenarioParams::default();
    let scenario = uniform(&params, 0x9a9e);
    // Warm-up pass so neither side pays first-touch costs.
    for (_, run) in overlap_roster(5.0) {
        let _ = run(&scenario, EngineMode::Lazy, &uavdc_obs::NOOP);
    }
    // Best-of-R per side: single passes on a busy machine jitter by more
    // than the effect under measurement; the minimum is the run least
    // disturbed by the scheduler.
    const REPS: usize = 5;
    let mut noop_ns = u64::MAX;
    let mut coll_ns = u64::MAX;
    for _ in 0..REPS {
        let mut pass_noop = 0u64;
        let mut pass_coll = 0u64;
        for (label, run) in overlap_roster(5.0) {
            let (_, base) = run(&scenario, EngineMode::Lazy, &uavdc_obs::NOOP);
            let rec = CollectingRecorder::new();
            let (_, inst) = run(&scenario, EngineMode::Lazy, &rec);
            assert_eq!(
                base.counters.evaluations, inst.counters.evaluations,
                "{label}: recorder changed the search"
            );
            pass_noop += base.setup_ns + base.loop_ns;
            pass_coll += inst.setup_ns + inst.loop_ns;
        }
        noop_ns = noop_ns.min(pass_noop);
        coll_ns = coll_ns.min(pass_coll);
    }
    let overhead = coll_ns as f64 / noop_ns.max(1) as f64 - 1.0;
    eprintln!(
        "obs overhead (fig4 delta=5m, full scale): noop {:.2} ms, collecting {:.2} ms, {:+.2}%",
        noop_ns as f64 / 1e6,
        coll_ns as f64 / 1e6,
        overhead * 100.0
    );
    if overhead * 100.0 > budget_pct {
        eprintln!("FAIL: overhead above the {budget_pct}% budget");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let mut out_path = "BENCH_planner.json".to_string();
    let mut min_alg2_speedup: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" | "--check" => {}
            "--obs-overhead" => {
                obs_overhead(3.0);
                return;
            }
            "--out" if i + 1 < args.len() => {
                i += 1;
                out_path = args[i].clone();
            }
            "--min-alg2-speedup" if i + 1 < args.len() => {
                i += 1;
                match args[i].parse() {
                    Ok(v) => min_alg2_speedup = Some(v),
                    Err(_) => {
                        eprintln!("--min-alg2-speedup expects a number");
                        std::process::exit(2);
                    }
                }
            }
            bad => {
                eprintln!("unknown argument: {bad}");
                eprintln!(
                    "usage: planner_baseline [--quick] [--check] [--obs-overhead] \
                     [--min-alg2-speedup X] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let (mode, scale, seeds): (&str, f64, Vec<u64>) = if quick {
        ("quick", 0.2, vec![0x9a9e])
    } else {
        ("full", 1.0, vec![0x9a9e, 0x9a9f, 0x9aa0])
    };

    let started = Instant::now();
    let entries = run_sweeps(scale, &seeds);
    eprintln!(
        "planner_baseline: {} runs in {:.1}s (mode {mode}, scale {scale})",
        entries.len(),
        started.elapsed().as_secs_f64()
    );

    let json = render_json(&entries, mode, scale, &seeds);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");

    // Console digest: one line per figure × algorithm.
    let mut keys: Vec<(&str, &str)> = entries.iter().map(|e| (e.figure, e.algorithm)).collect();
    keys.sort_unstable();
    keys.dedup();
    for (fig, alg) in keys {
        let (le, ee, ln, en) = aggregate(
            entries
                .iter()
                .filter(|e| e.figure == fig && e.algorithm == alg),
        );
        eprintln!(
            "  {fig:<5} {alg:<18} evals {ee:>9} -> {le:>8} ({:>5.1}x)  loop {:>8.2} ms -> {:>8.2} ms ({:.2}x)",
            ee as f64 / le.max(1) as f64,
            en as f64 / 1e6,
            ln as f64 / 1e6,
            en as f64 / ln.max(1) as f64,
        );
    }

    if check {
        let diverged: Vec<&Entry> = entries.iter().filter(|e| !e.plans_identical).collect();
        let over: Vec<&Entry> = entries.iter().filter(|e| !e.within_bound()).collect();
        for e in &diverged {
            eprintln!(
                "DIVERGED: {} {}={} {} seed {}",
                e.figure, e.x_label, e.x, e.algorithm, e.seed
            );
        }
        for e in &over {
            eprintln!(
                "OVER BOUND: {} {}={} {} seed {}: {} evaluations > bound {}",
                e.figure,
                e.x_label,
                e.x,
                e.algorithm,
                e.seed,
                e.lazy.counters.evaluations,
                e.lazy.counters.exhaustive_bound()
            );
        }
        if !diverged.is_empty() || !over.is_empty() {
            std::process::exit(1);
        }
        eprintln!(
            "check passed: all {} lazy runs bit-identical and within the exhaustive bound",
            entries.len()
        );
    }

    if let Some(floor) = min_alg2_speedup {
        let speedup = fig4_delta5_speedup(&entries, "Algorithm 2");
        eprintln!("Algorithm 2 fig4 delta=5m wall speedup: {speedup:.2}x (floor {floor:.2}x)");
        if speedup < floor {
            eprintln!("FAIL: Algorithm 2 wall speedup below the floor");
            std::process::exit(1);
        }
    }
}
