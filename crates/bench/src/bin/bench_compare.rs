//! CI gate diffing two `planner_baseline` JSON artefacts.
//!
//! ```text
//! cargo run --release -p uavdc-bench --bin bench_compare -- \
//!     BENCH_planner.quick.json /tmp/current.json \
//!     [--rel-tol 0.5] [--min-abs-ns 5000000] [--gate-timings] \
//!     [--summary /path/to/summary.md]
//! ```
//!
//! Exit codes: `0` clean (timing jitter within tolerance is clean), `1`
//! deterministic divergence (eval counters, plan hashes, headers, or
//! unpaired entries), `2` timing regression while `--gate-timings` is
//! set (without the flag, regressions are printed but informational),
//! `3` usage or parse error.
//!
//! `--summary PATH` appends the markdown diff table to `PATH` — CI passes
//! `$GITHUB_STEP_SUMMARY`.

use std::io::Write as _;
use uavdc_bench::compare::{compare, CompareConfig, Verdict};
use uavdc_bench::json::parse;

fn fail_usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: bench_compare BASELINE CURRENT [--rel-tol F] [--min-abs-ns N] \
         [--gate-timings] [--summary PATH]"
    );
    std::process::exit(3);
}

fn read_doc(path: &str) -> uavdc_bench::json::Json {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => fail_usage(&format!("cannot read {path}: {e}")),
    };
    match parse(&text) {
        Ok(doc) => doc,
        Err(e) => fail_usage(&format!("cannot parse {path}: {e}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<String> = Vec::new();
    let mut cfg = CompareConfig::default();
    let mut gate_timings = false;
    let mut summary_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rel-tol" if i + 1 < args.len() => {
                i += 1;
                cfg.rel_tol = match args[i].parse() {
                    Ok(v) => v,
                    Err(_) => fail_usage("--rel-tol expects a number"),
                };
            }
            "--min-abs-ns" if i + 1 < args.len() => {
                i += 1;
                cfg.min_abs_ns = match args[i].parse() {
                    Ok(v) => v,
                    Err(_) => fail_usage("--min-abs-ns expects an integer"),
                };
            }
            "--gate-timings" => gate_timings = true,
            "--summary" if i + 1 < args.len() => {
                i += 1;
                summary_path = Some(args[i].clone());
            }
            flag if flag.starts_with("--") => {
                fail_usage(&format!("unknown flag: {flag}"));
            }
            path => positional.push(path.to_string()),
        }
        i += 1;
    }
    let [baseline_path, current_path] = positional.as_slice() else {
        fail_usage("expected exactly two positional arguments: BASELINE CURRENT");
    };

    let baseline = read_doc(baseline_path);
    let current = read_doc(current_path);
    let report = match compare(&baseline, &current, &cfg) {
        Ok(r) => r,
        Err(e) => fail_usage(&format!("cannot compare: {e}")),
    };

    // Informational header note (threads differing is expected between a
    // dev laptop and CI; determinism makes it harmless).
    let (bt, ct) = (baseline.get("threads"), current.get("threads"));
    if bt != ct {
        eprintln!("note: thread counts differ (baseline {bt:?}, current {ct:?}); counters are thread-invariant so this is informational");
    }

    eprintln!(
        "bench_compare: {} entries paired, {} differing fields, {} structural problems",
        report.paired_entries,
        report.rows.len(),
        report.structural.len()
    );
    for s in &report.structural {
        eprintln!("  STRUCTURAL: {s}");
    }
    for r in &report.rows {
        let tag = match r.verdict {
            Verdict::Ok => "ok",
            Verdict::TimingRegression => "TIMING",
            Verdict::Diverged => "DIVERGED",
        };
        eprintln!(
            "  {tag}: {} {}: {} -> {}",
            r.key, r.field, r.baseline, r.current
        );
    }

    if let Some(path) = summary_path {
        let md = report.markdown();
        let result = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(md.as_bytes()));
        if let Err(e) = result {
            eprintln!("warning: cannot write summary {path}: {e}");
        }
    }

    if report.has_divergence() {
        eprintln!("FAIL: deterministic divergence");
        std::process::exit(1);
    }
    if report.has_timing_regression() {
        if gate_timings {
            eprintln!("FAIL: timing regression beyond tolerance");
            std::process::exit(2);
        }
        eprintln!("timing regression beyond tolerance (informational; --gate-timings not set)");
    }
    eprintln!("OK");
}
