//! Robustness baseline for the closed-loop mission controller.
//!
//! Plans the paper's fig-4 scenarios (grid sweep at the default
//! battery), then flies each plan through the [`MissionController`]
//! under a ladder of fault intensities — calm, breeze, gusty, storm —
//! and writes `BENCH_robustness.json`: delivered volume (and its exact
//! bit pattern), energy bits, trace and executed-plan fingerprints, and
//! the controller's decision counters per sweep point. The headline is
//! the delivered-volume degradation curve versus fault intensity.
//!
//! ```text
//! cargo run --release -p uavdc-bench --bin robustness_sweep            # full baseline
//! cargo run --release -p uavdc-bench --bin robustness_sweep -- --quick # CI smoke
//! ```
//!
//! Every field in an entry is deterministic (seeded RNG streams, no
//! wall-clock anywhere), so `bench_compare` diffs robustness artefacts
//! with zero tolerance: any flipped bit is a behaviour change. `--check`
//! exits non-zero if any mission fails its safe-return contract — the
//! belt-and-braces twin of the `controller_props` harness.

use std::fmt::Write as _;
use std::time::Instant;
use uavdc_bench::delta_sweep;
use uavdc_core::{Alg2Config, Alg2Planner, Alg3Config, Alg3Planner, BenchmarkPlanner, EngineMode};
use uavdc_net::generator::{uniform, ScenarioParams};
use uavdc_net::units::Seconds;
use uavdc_net::{FaultConfig, Scenario};
use uavdc_sim::{
    ControllerConfig, FaultPlan, LinkModel, MissionController, SimConfig, SimEvent, WindModel,
};

/// The fault-intensity ladder, from undisturbed to severe. Seeds are
/// derived from the scenario seed so every (scenario, level) pair is a
/// reproducible triple.
const LEVELS: [&str; 4] = ["calm", "breeze", "gusty", "storm"];

fn disturbances(level: usize, seed: u64) -> SimConfig {
    let wind_seed = seed ^ 0x5eed_0001;
    let link_seed = seed ^ 0x5eed_0002;
    let fault_seed = seed ^ 0x5eed_0003;
    match level {
        0 => SimConfig::default(),
        1 => SimConfig {
            wind: WindModel::uniform(1.0, 1.2, wind_seed),
            link: LinkModel::uniform(0.8, 1.0, link_seed),
            fault: FaultPlan::new(
                FaultConfig {
                    upload_fail: 0.1,
                    max_retries: 2,
                    retry_backoff: Seconds(0.2),
                    dropout: 0.05,
                    ..FaultConfig::none()
                },
                fault_seed,
            ),
            ..SimConfig::default()
        },
        2 => SimConfig {
            wind: WindModel::uniform(1.0, 1.35, wind_seed),
            link: LinkModel::uniform(0.6, 1.0, link_seed),
            fault: FaultPlan::new(
                FaultConfig {
                    gust_onset: 0.3,
                    gust_legs: (1, 3),
                    gust_severity: (1.1, 1.5),
                    upload_fail: 0.2,
                    max_retries: 1,
                    retry_backoff: Seconds(0.3),
                    dropout: 0.1,
                },
                fault_seed,
            ),
            ..SimConfig::default()
        },
        _ => SimConfig {
            wind: WindModel::uniform(1.0, 1.5, wind_seed),
            link: LinkModel::uniform(0.4, 0.9, link_seed),
            fault: FaultPlan::new(
                FaultConfig {
                    gust_onset: 0.6,
                    gust_legs: (2, 5),
                    gust_severity: (1.3, 2.0),
                    upload_fail: 0.4,
                    max_retries: 3,
                    retry_backoff: Seconds(0.5),
                    dropout: 0.3,
                },
                fault_seed,
            ),
            ..SimConfig::default()
        },
    }
}

struct Entry {
    delta: f64,
    algorithm: &'static str,
    seed: u64,
    level: usize,
    delivered_mb: f64,
    planned_mb: f64,
    energy_bits: u64,
    trace_fp: u64,
    executed_fp: u64,
    replans: u64,
    trims: u64,
    drops: u64,
    safe: bool,
}

fn fly_point(
    delta: f64,
    algorithm: &'static str,
    seed: u64,
    scenario: &Scenario,
    plan: &uavdc_core::CollectionPlan,
    level: usize,
) -> Entry {
    let cfg = disturbances(level, seed);
    let res = MissionController::new(ControllerConfig::default()).fly(scenario, plan, &cfg);
    let depleted = res
        .outcome
        .trace
        .events
        .iter()
        .any(|e| matches!(e, SimEvent::BatteryDepleted { .. }));
    let safe = res.outcome.completed
        && !depleted
        && res.outcome.trace.check_well_formed().is_ok()
        && res.outcome.energy_used.value() <= scenario.uav.capacity.value() * (1.0 + 1e-9) + 1e-6;
    Entry {
        delta,
        algorithm,
        seed,
        level,
        delivered_mb: res.outcome.collected.value(),
        planned_mb: plan.collected_volume().value(),
        energy_bits: res.outcome.energy_used.value().to_bits(),
        trace_fp: res.outcome.trace.fingerprint(),
        executed_fp: res.executed.fingerprint(),
        replans: res.replans,
        trims: res.trimmed_hovers,
        drops: res.dropped_stops,
        safe,
    }
}

fn run_sweeps(scale: f64, seeds: &[u64], deltas: &[f64]) -> Vec<Entry> {
    let mut entries = Vec::new();
    for &delta in deltas {
        let params = ScenarioParams::default().scaled(scale);
        for &seed in seeds {
            let scenario = uniform(&params, seed);
            let roster: Vec<(&'static str, uavdc_core::CollectionPlan)> = vec![
                (
                    "Algorithm 2",
                    Alg2Planner::new(Alg2Config {
                        delta,
                        engine: EngineMode::Lazy,
                        ..Alg2Config::default()
                    })
                    .plan_with_stats(&scenario)
                    .0,
                ),
                (
                    "Algorithm 3 (K=2)",
                    Alg3Planner::new(Alg3Config {
                        delta,
                        k: 2,
                        engine: EngineMode::Lazy,
                        ..Alg3Config::default()
                    })
                    .plan_with_stats(&scenario)
                    .0,
                ),
                (
                    "Benchmark",
                    BenchmarkPlanner
                        .plan_with_stats(&scenario, EngineMode::Lazy)
                        .0,
                ),
            ];
            for (algorithm, plan) in &roster {
                for level in 0..LEVELS.len() {
                    entries.push(fly_point(delta, algorithm, seed, &scenario, plan, level));
                }
            }
        }
    }
    entries
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn render_json(entries: &[Entry], mode: &str, scale: f64, seeds: &[u64]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"uavdc-robustness/1\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"scale\": {scale},");
    let _ = writeln!(
        out,
        "  \"seeds\": [{}],",
        seeds
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        out,
        "  \"levels\": [{}],",
        LEVELS
            .iter()
            .map(|l| format!("\"{l}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Headline: delivered volume per fault level, and its ratio to the
    // calm run — the degradation curve the sweep exists to measure.
    out.push_str("  \"degradation\": {\n");
    let calm_total: f64 = entries
        .iter()
        .filter(|e| e.level == 0)
        .map(|e| e.delivered_mb)
        .sum();
    for (level, name) in LEVELS.iter().enumerate() {
        let total: f64 = entries
            .iter()
            .filter(|e| e.level == level)
            .map(|e| e.delivered_mb)
            .sum();
        let _ = writeln!(
            out,
            "    \"{name}\": {{\"delivered_mb\": {}, \"vs_calm\": {}}}{}",
            json_f64(total),
            json_f64(if calm_total > 0.0 {
                total / calm_total
            } else {
                1.0
            }),
            if level + 1 < LEVELS.len() { "," } else { "" }
        );
    }
    out.push_str("  },\n");

    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"figure\": \"fig4\", \"delta_m\": {}, \"algorithm\": \"{}\", \"seed\": {}, \
             \"fault_level\": {}, \"fault_name\": \"{}\", \
             \"delivered_mb\": {}, \"planned_mb\": {}, \
             \"delivered_frac\": {}, \"energy_bits\": \"{:016x}\", \
             \"trace_fp\": \"{:016x}\", \"executed_fp\": \"{:016x}\", \
             \"replans\": {}, \"trims\": {}, \"drops\": {}, \"safe\": {}}}{}",
            e.delta,
            e.algorithm,
            e.seed,
            e.level,
            LEVELS[e.level],
            json_f64(e.delivered_mb),
            json_f64(e.planned_mb),
            json_f64(if e.planned_mb > 0.0 {
                e.delivered_mb / e.planned_mb
            } else {
                1.0
            }),
            e.energy_bits,
            e.trace_fp,
            e.executed_fp,
            e.replans,
            e.trims,
            e.drops,
            e.safe,
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let mut out_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" | "--check" => {}
            "--out" if i + 1 < args.len() => {
                i += 1;
                out_path = Some(args[i].clone());
            }
            bad => {
                eprintln!("unknown argument: {bad}");
                eprintln!("usage: robustness_sweep [--quick] [--check] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let (mode, scale, seeds, deltas): (&str, f64, Vec<u64>, Vec<f64>) = if quick {
        ("quick", 0.2, vec![0x9a9e], vec![5.0, 15.0, 25.0])
    } else {
        ("full", 1.0, vec![0x9a9e, 0x9a9f, 0x9aa0], delta_sweep())
    };
    let out_path = out_path.unwrap_or_else(|| {
        if quick {
            "BENCH_robustness.quick.json".to_string()
        } else {
            "BENCH_robustness.json".to_string()
        }
    });

    let started = Instant::now();
    let entries = run_sweeps(scale, &seeds, &deltas);
    eprintln!(
        "robustness_sweep: {} missions in {:.1}s (mode {mode}, scale {scale})",
        entries.len(),
        started.elapsed().as_secs_f64()
    );

    let json = render_json(&entries, mode, scale, &seeds);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");

    // Console digest: degradation per level.
    for (level, name) in LEVELS.iter().enumerate() {
        let total: f64 = entries
            .iter()
            .filter(|e| e.level == level)
            .map(|e| e.delivered_mb)
            .sum();
        let n = entries.iter().filter(|e| e.level == level).count();
        let interventions: u64 = entries
            .iter()
            .filter(|e| e.level == level)
            .map(|e| e.replans + e.trims + e.drops)
            .sum();
        eprintln!(
            "  {name:<7} delivered {:>10.1} MB over {n} missions, {interventions} interventions",
            total
        );
    }

    if check {
        let unsafe_runs: Vec<&Entry> = entries.iter().filter(|e| !e.safe).collect();
        for e in &unsafe_runs {
            eprintln!(
                "UNSAFE: fig4 delta_m={} {} seed={} level={}",
                e.delta, e.algorithm, e.seed, e.level
            );
        }
        if !unsafe_runs.is_empty() {
            std::process::exit(1);
        }
        eprintln!(
            "check passed: all {} missions returned safely within budget",
            entries.len()
        );
    }
}
