//! Noise-aware comparison of two `planner_baseline` JSON artefacts.
//!
//! The baseline file mixes two kinds of numbers. *Deterministic* fields —
//! candidate counts, iteration counts, every evaluation counter, plan
//! hashes, the lazy/exhaustive identity bit — are products of the
//! workspace's determinism discipline: any difference is a behaviour
//! change and fails the comparison outright. *Timing* fields (`setup_ns`,
//! `loop_ns`) are machine noise up to a point, so they are gated by a
//! relative tolerance combined with a minimum absolute delta (tiny phases
//! jitter by large ratios without meaning anything).
//!
//! [`compare`] pairs entries by (figure, x value, algorithm, seed) and
//! returns a [`CompareReport`]; [`CompareReport::markdown`] renders the
//! diff table CI posts to the job summary.

use crate::json::Json;
use std::fmt::Write as _;

/// Tolerances for the timing comparison.
#[derive(Clone, Copy, Debug)]
pub struct CompareConfig {
    /// Relative tolerance for timings: a current value up to
    /// `(1 + rel_tol) ×` baseline passes. Default `0.5` — CI runners are
    /// noisy, and the deterministic counters are the real gate.
    pub rel_tol: f64,
    /// A timing difference below this many nanoseconds never fails,
    /// whatever the ratio. Default 5 ms.
    pub min_abs_ns: u64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            rel_tol: 0.5,
            min_abs_ns: 5_000_000,
        }
    }
}

/// How one compared field fared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Values match (deterministic) or are within tolerance (timing).
    Ok,
    /// Timing above tolerance — a regression when timings are gated.
    TimingRegression,
    /// Deterministic field differs — always a failure.
    Diverged,
}

/// One row of the diff: a field of one paired entry.
#[derive(Clone, Debug)]
pub struct Row {
    /// Entry key, e.g. `fig4 delta_m=5 Algorithm 2 seed=39582`.
    pub key: String,
    /// Field path, e.g. `lazy.evaluations`.
    pub field: String,
    /// Baseline value as text.
    pub baseline: String,
    /// Current value as text.
    pub current: String,
    /// Outcome for this field.
    pub verdict: Verdict,
}

/// Everything [`compare`] found.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Rows that differed (identical fields are not listed).
    pub rows: Vec<Row>,
    /// Structural problems: header mismatches, unpaired entries.
    pub structural: Vec<String>,
    /// Number of entries paired between the two files.
    pub paired_entries: usize,
}

impl CompareReport {
    /// Any deterministic divergence (structural problems count).
    pub fn has_divergence(&self) -> bool {
        !self.structural.is_empty() || self.rows.iter().any(|r| r.verdict == Verdict::Diverged)
    }

    /// Any timing above tolerance.
    pub fn has_timing_regression(&self) -> bool {
        self.rows
            .iter()
            .any(|r| r.verdict == Verdict::TimingRegression)
    }

    /// Renders the GitHub-flavoured-markdown summary CI appends to
    /// `$GITHUB_STEP_SUMMARY`.
    pub fn markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("## bench-compare\n\n");
        let _ = writeln!(out, "{} entries paired.\n", self.paired_entries);
        if self.structural.is_empty() && self.rows.is_empty() {
            out.push_str("No differences beyond tolerance. ✅\n");
            return out;
        }
        for s in &self.structural {
            let _ = writeln!(out, "- ❌ {s}");
        }
        if !self.rows.is_empty() {
            out.push_str("\n| entry | field | baseline | current | status |\n");
            out.push_str("|---|---|---:|---:|---|\n");
            for r in &self.rows {
                let status = match r.verdict {
                    Verdict::Ok => "within tolerance",
                    Verdict::TimingRegression => "⚠️ timing regression",
                    Verdict::Diverged => "❌ diverged",
                };
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {} |",
                    r.key, r.field, r.baseline, r.current, status
                );
            }
        }
        out
    }
}

/// Header fields that must match exactly for entries to be comparable at
/// all. `threads` is deliberately absent: the planners' counters and
/// plans are thread-count-invariant by construction, so differing
/// parallelism must not fail the gate (it is reported informationally).
const HEADER_EXACT: [&str; 3] = ["schema", "mode", "scale"];

/// Deterministic per-engine counters inside `lazy` / `exhaustive`.
const ENGINE_COUNTERS: [&str; 5] = [
    "evaluations",
    "marginal_evals",
    "delta_rescans",
    "fixups",
    "heap_pops",
];

/// Timing fields inside `lazy` / `exhaustive`.
const ENGINE_TIMINGS: [&str; 2] = ["setup_ns", "loop_ns"];

fn render(v: Option<&Json>) -> String {
    match v {
        None => "∅".to_string(),
        Some(Json::Null) => "null".to_string(),
        Some(Json::Bool(b)) => b.to_string(),
        Some(Json::Num(n)) => {
            // lint:allow(float-ord): exactness probe — integral values round-trip bit-identically
            if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Some(Json::Str(s)) => s.clone(),
        Some(other) => format!("{other:?}"),
    }
}

fn entry_key(e: &Json, x_label: &str) -> String {
    let mut key = format!(
        "{} {}={} {} seed={}",
        e.get("figure").and_then(Json::as_str).unwrap_or("?"),
        x_label,
        render(e.get(x_label)),
        e.get("algorithm").and_then(Json::as_str).unwrap_or("?"),
        render(e.get("seed")),
    );
    // Robustness entries repeat each sweep point across the fault
    // ladder; the level disambiguates the key.
    if let Some(level) = e.get("fault_level") {
        let _ = write!(key, " level={}", render(Some(level)));
    }
    key
}

/// The sweep-coordinate field of an entry (`capacity_j` or `delta_m`).
fn x_label(e: &Json) -> &str {
    if e.get("delta_m").is_some() {
        "delta_m"
    } else {
        "capacity_j"
    }
}

/// Recursively hard-diffs two JSON values field by field. Used for
/// schemas whose entries are deterministic end to end (the robustness
/// baseline): every scalar divergence is its own report row, objects
/// walk the union of their keys, arrays pair elementwise.
fn diff_exact(rows: &mut Vec<Row>, key: &str, path: &str, a: Option<&Json>, b: Option<&Json>) {
    if a == b {
        return;
    }
    match (a, b) {
        (Some(Json::Obj(ao)), Some(Json::Obj(bo))) => {
            let mut fields: Vec<&String> = ao.keys().chain(bo.keys()).collect();
            fields.sort_unstable();
            fields.dedup();
            for field in fields {
                let sub = if path.is_empty() {
                    field.clone()
                } else {
                    format!("{path}.{field}")
                };
                diff_exact(rows, key, &sub, ao.get(field), bo.get(field));
            }
        }
        (Some(Json::Arr(aa)), Some(Json::Arr(ba))) if aa.len() == ba.len() => {
            for (i, (ae, be)) in aa.iter().zip(ba).enumerate() {
                diff_exact(rows, key, &format!("{path}[{i}]"), Some(ae), Some(be));
            }
        }
        _ => push_if_diff(rows, key, path, a, b),
    }
}

fn push_if_diff(rows: &mut Vec<Row>, key: &str, field: &str, a: Option<&Json>, b: Option<&Json>) {
    if a != b {
        rows.push(Row {
            key: key.to_string(),
            field: field.to_string(),
            baseline: render(a),
            current: render(b),
            verdict: Verdict::Diverged,
        });
    }
}

fn compare_timing(
    rows: &mut Vec<Row>,
    cfg: &CompareConfig,
    key: &str,
    field: &str,
    a: Option<&Json>,
    b: Option<&Json>,
) {
    let (Some(base), Some(cur)) = (a.and_then(Json::as_u64), b.and_then(Json::as_u64)) else {
        push_if_diff(rows, key, field, a, b); // malformed timings: hard diff
        return;
    };
    if cur <= base {
        return; // faster is never a regression
    }
    let abs = cur - base;
    let rel = abs as f64 / (base.max(1)) as f64;
    if abs >= cfg.min_abs_ns && rel > cfg.rel_tol {
        rows.push(Row {
            key: key.to_string(),
            field: field.to_string(),
            baseline: format!("{:.2} ms", base as f64 / 1e6),
            current: format!("{:.2} ms (+{:.0}%)", cur as f64 / 1e6, rel * 100.0),
            verdict: Verdict::TimingRegression,
        });
    }
}

/// Compares two parsed baseline documents.
///
/// Returns `Err` only when a document is too malformed to walk (missing
/// `entries` array); everything else is reported in the
/// [`CompareReport`].
pub fn compare(
    baseline: &Json,
    current: &Json,
    cfg: &CompareConfig,
) -> Result<CompareReport, String> {
    let mut report = CompareReport::default();

    for field in HEADER_EXACT {
        let (a, b) = (baseline.get(field), current.get(field));
        if a != b {
            report.structural.push(format!(
                "header `{field}` differs: baseline {} vs current {}",
                render(a),
                render(b)
            ));
        }
    }
    if baseline.get("seeds") != current.get("seeds") {
        report.structural.push(format!(
            "header `seeds` differ: baseline {} vs current {}",
            render(baseline.get("seeds")),
            render(current.get("seeds"))
        ));
    }

    let base_entries = baseline
        .get("entries")
        .and_then(Json::as_array)
        .ok_or_else(|| "baseline has no `entries` array".to_string())?;
    let cur_entries = current
        .get("entries")
        .and_then(Json::as_array)
        .ok_or_else(|| "current has no `entries` array".to_string())?;

    // Pair by key. Keys are unique per file by construction; a BTreeMap
    // keeps the unpaired-entry report deterministic.
    let mut cur_by_key = std::collections::BTreeMap::new();
    for e in cur_entries {
        cur_by_key.insert(entry_key(e, x_label(e)), e);
    }

    // Robustness artefacts carry no timings: every entry field is
    // deterministic, so they are diffed exactly, whatever their shape.
    let all_deterministic = baseline
        .get("schema")
        .and_then(Json::as_str)
        .is_some_and(|s| s.starts_with("uavdc-robustness/"));

    for base in base_entries {
        let xl = x_label(base);
        let key = entry_key(base, xl);
        let Some(cur) = cur_by_key.remove(&key) else {
            report
                .structural
                .push(format!("entry missing from current: {key}"));
            continue;
        };
        report.paired_entries += 1;

        if all_deterministic {
            diff_exact(&mut report.rows, &key, "", Some(base), Some(cur));
            continue;
        }

        for field in ["candidates", "iterations", "exhaustive_bound"] {
            push_if_diff(
                &mut report.rows,
                &key,
                field,
                base.get(field),
                cur.get(field),
            );
        }
        push_if_diff(
            &mut report.rows,
            &key,
            "plans_identical",
            base.get("plans_identical"),
            cur.get("plans_identical"),
        );
        push_if_diff(
            &mut report.rows,
            &key,
            "plan_hash",
            base.get("plan_hash"),
            cur.get("plan_hash"),
        );
        for engine in ["lazy", "exhaustive"] {
            let (be, ce) = (base.get(engine), cur.get(engine));
            for counter in ENGINE_COUNTERS {
                push_if_diff(
                    &mut report.rows,
                    &key,
                    &format!("{engine}.{counter}"),
                    be.and_then(|e| e.get(counter)),
                    ce.and_then(|e| e.get(counter)),
                );
            }
            for timing in ENGINE_TIMINGS {
                compare_timing(
                    &mut report.rows,
                    cfg,
                    &key,
                    &format!("{engine}.{timing}"),
                    be.and_then(|e| e.get(timing)),
                    ce.and_then(|e| e.get(timing)),
                );
            }
        }
    }
    for key in cur_by_key.keys() {
        report
            .structural
            .push(format!("entry missing from baseline: {key}"));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn doc(loop_ns: u64, evals: u64, hash: &str) -> Json {
        parse(&format!(
            r#"{{"schema": "uavdc-planner-baseline/2", "mode": "quick", "scale": 0.2,
                "seeds": [39582], "threads": 2,
                "entries": [
                  {{"figure": "fig4", "delta_m": 5, "algorithm": "Algorithm 2",
                    "seed": 39582, "candidates": 100, "iterations": 10,
                    "exhaustive_bound": 1000, "plans_identical": true,
                    "plan_hash": "{hash}",
                    "lazy": {{"evaluations": {evals}, "marginal_evals": 5,
                             "delta_rescans": 0, "fixups": 0, "heap_pops": 30,
                             "setup_ns": 1000000, "loop_ns": {loop_ns}}},
                    "exhaustive": {{"evaluations": 1000, "marginal_evals": 0,
                             "delta_rescans": 0, "fixups": 0, "heap_pops": 0,
                             "setup_ns": 1000000, "loop_ns": 9000000}}}}
                ]}}"#
        ))
        .expect("fixture parses")
    }

    #[test]
    fn identical_documents_are_clean() {
        let a = doc(8_000_000, 120, "aa");
        let r = compare(&a, &a, &CompareConfig::default()).expect("walkable");
        assert!(!r.has_divergence());
        assert!(!r.has_timing_regression());
        assert_eq!(r.paired_entries, 1);
        assert!(r.markdown().contains("No differences"));
    }

    #[test]
    fn eval_count_change_diverges() {
        let a = doc(8_000_000, 120, "aa");
        let b = doc(8_000_000, 121, "aa");
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(r.has_divergence());
        assert!(r.rows.iter().any(|row| row.field == "lazy.evaluations"));
    }

    #[test]
    fn plan_hash_change_diverges() {
        let a = doc(8_000_000, 120, "aa");
        let b = doc(8_000_000, 120, "bb");
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(r.has_divergence());
    }

    #[test]
    fn timing_jitter_within_tolerance_passes() {
        let a = doc(8_000_000, 120, "aa");
        let b = doc(11_000_000, 120, "aa"); // +37% < 50% default rel_tol
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(!r.has_divergence());
        assert!(!r.has_timing_regression());
    }

    #[test]
    fn large_timing_jump_is_a_regression_not_divergence() {
        let a = doc(8_000_000, 120, "aa");
        let b = doc(40_000_000, 120, "aa"); // 5x, far over tolerance
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(!r.has_divergence());
        assert!(r.has_timing_regression());
        assert!(r.markdown().contains("timing regression"));
    }

    #[test]
    fn small_absolute_timing_delta_never_fails() {
        let a = doc(100, 120, "aa");
        let b = doc(1_000_000, 120, "aa"); // 10000x but < min_abs_ns
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(!r.has_timing_regression());
    }

    #[test]
    fn getting_faster_is_fine() {
        let a = doc(80_000_000, 120, "aa");
        let b = doc(8_000_000, 120, "aa");
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(!r.has_divergence());
        assert!(!r.has_timing_regression());
    }

    #[test]
    fn header_mismatch_is_structural() {
        let a = doc(8_000_000, 120, "aa");
        let mut b = doc(8_000_000, 120, "aa");
        if let Json::Obj(map) = &mut b {
            map.insert("mode".to_string(), Json::Str("full".to_string()));
        }
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(r.has_divergence());
        assert!(r.structural.iter().any(|s| s.contains("mode")));
    }

    #[test]
    fn unpaired_entries_are_structural() {
        let a = doc(8_000_000, 120, "aa");
        let mut b = doc(8_000_000, 120, "aa");
        if let Json::Obj(map) = &mut b {
            map.insert("entries".to_string(), Json::Arr(Vec::new()));
        }
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(r.has_divergence());
        assert_eq!(r.paired_entries, 0);
    }

    fn robustness_doc(trace_fp: &str, drops: u64) -> Json {
        parse(&format!(
            r#"{{"schema": "uavdc-robustness/1", "mode": "quick", "scale": 0.2,
                "seeds": [39582], "levels": ["calm", "storm"],
                "entries": [
                  {{"figure": "fig4", "delta_m": 5, "algorithm": "Algorithm 2",
                    "seed": 39582, "fault_level": 0, "fault_name": "calm",
                    "delivered_mb": 812.5, "planned_mb": 812.5,
                    "delivered_frac": 1, "energy_bits": "4114b5318b4c842a",
                    "trace_fp": "aaaaaaaaaaaaaaaa", "executed_fp": "cccccccccccccccc",
                    "replans": 0, "trims": 0, "drops": 0, "safe": true}},
                  {{"figure": "fig4", "delta_m": 5, "algorithm": "Algorithm 2",
                    "seed": 39582, "fault_level": 1, "fault_name": "storm",
                    "delivered_mb": 444.25, "planned_mb": 812.5,
                    "delivered_frac": 0.55, "energy_bits": "4114b5318b4c842b",
                    "trace_fp": "{trace_fp}", "executed_fp": "dddddddddddddddd",
                    "replans": 1, "trims": 2, "drops": {drops}, "safe": true}}
                ]}}"#
        ))
        .expect("fixture parses")
    }

    #[test]
    fn robustness_identical_documents_are_clean() {
        let a = robustness_doc("bbbbbbbbbbbbbbbb", 3);
        let r = compare(&a, &a, &CompareConfig::default()).expect("walkable");
        assert!(!r.has_divergence());
        // Both fault levels of the sweep point pair separately.
        assert_eq!(r.paired_entries, 2);
    }

    #[test]
    fn robustness_entries_hard_diff_every_field() {
        let a = robustness_doc("bbbbbbbbbbbbbbbb", 3);
        let b = robustness_doc("bbbbbbbbbbbbbbbc", 4); // flipped fp bit + drop count
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(r.has_divergence());
        assert!(!r.has_timing_regression(), "no timings in this schema");
        assert!(r.rows.iter().any(|row| row.field == "trace_fp"));
        assert!(r.rows.iter().any(|row| row.field == "drops"));
        // The diverging rows belong to the storm-level entry only.
        assert!(r.rows.iter().all(|row| row.key.ends_with("level=1")));
    }
}
