//! Noise-aware comparison of two baseline JSON artefacts
//! (`planner_baseline`, `robustness_baseline`, `service_baseline`).
//!
//! The baseline file mixes two kinds of numbers. *Deterministic* fields —
//! candidate counts, iteration counts, every evaluation counter, plan
//! hashes, the lazy/exhaustive identity bit, the service's cache
//! accounting — are products of the workspace's determinism discipline:
//! any difference is a behaviour change and fails the comparison
//! outright. *Timing* fields (`setup_ns`, `loop_ns`, the service's
//! latency percentiles and plans/sec) are machine noise up to a point, so
//! they are gated by a relative tolerance combined with a minimum
//! absolute delta (tiny phases jitter by large ratios without meaning
//! anything); throughput rates gate in the opposite direction (lower is
//! the regression).
//!
//! [`compare`] pairs entries by (figure, x value, algorithm, seed[,
//! fault level][, engine]) and returns a [`CompareReport`];
//! [`CompareReport::markdown`] renders the diff table CI posts to the
//! job summary. Entries present on only one side and duplicate entry
//! keys within one side are structural failures — nothing is silently
//! skipped.

use crate::json::Json;
use std::fmt::Write as _;

/// Tolerances for the timing comparison.
#[derive(Clone, Copy, Debug)]
pub struct CompareConfig {
    /// Relative tolerance for timings: a current value up to
    /// `(1 + rel_tol) ×` baseline passes. Default `0.5` — CI runners are
    /// noisy, and the deterministic counters are the real gate.
    pub rel_tol: f64,
    /// A timing difference below this many nanoseconds never fails,
    /// whatever the ratio. Default 5 ms.
    pub min_abs_ns: u64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            rel_tol: 0.5,
            min_abs_ns: 5_000_000,
        }
    }
}

/// How one compared field fared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Values match (deterministic) or are within tolerance (timing).
    Ok,
    /// Timing above tolerance — a regression when timings are gated.
    TimingRegression,
    /// Deterministic field differs — always a failure.
    Diverged,
}

/// One row of the diff: a field of one paired entry.
#[derive(Clone, Debug)]
pub struct Row {
    /// Entry key, e.g. `fig4 delta_m=5 Algorithm 2 seed=39582`.
    pub key: String,
    /// Field path, e.g. `lazy.evaluations`.
    pub field: String,
    /// Baseline value as text.
    pub baseline: String,
    /// Current value as text.
    pub current: String,
    /// Outcome for this field.
    pub verdict: Verdict,
}

/// Everything [`compare`] found.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Rows that differed (identical fields are not listed).
    pub rows: Vec<Row>,
    /// Structural problems: header mismatches, unpaired entries.
    pub structural: Vec<String>,
    /// Number of entries paired between the two files.
    pub paired_entries: usize,
}

impl CompareReport {
    /// Any deterministic divergence (structural problems count).
    pub fn has_divergence(&self) -> bool {
        !self.structural.is_empty() || self.rows.iter().any(|r| r.verdict == Verdict::Diverged)
    }

    /// Any timing above tolerance.
    pub fn has_timing_regression(&self) -> bool {
        self.rows
            .iter()
            .any(|r| r.verdict == Verdict::TimingRegression)
    }

    /// Renders the GitHub-flavoured-markdown summary CI appends to
    /// `$GITHUB_STEP_SUMMARY`.
    pub fn markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("## bench-compare\n\n");
        let _ = writeln!(out, "{} entries paired.\n", self.paired_entries);
        if self.structural.is_empty() && self.rows.is_empty() {
            out.push_str("No differences beyond tolerance. ✅\n");
            return out;
        }
        for s in &self.structural {
            let _ = writeln!(out, "- ❌ {s}");
        }
        if !self.rows.is_empty() {
            out.push_str("\n| entry | field | baseline | current | status |\n");
            out.push_str("|---|---|---:|---:|---|\n");
            for r in &self.rows {
                let status = match r.verdict {
                    Verdict::Ok => "within tolerance",
                    Verdict::TimingRegression => "⚠️ timing regression",
                    Verdict::Diverged => "❌ diverged",
                };
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {} |",
                    r.key, r.field, r.baseline, r.current, status
                );
            }
        }
        out
    }
}

/// Header fields that must match exactly for entries to be comparable at
/// all. `threads` is deliberately absent: the planners' counters and
/// plans are thread-count-invariant by construction, so differing
/// parallelism must not fail the gate (it is reported informationally).
const HEADER_EXACT: [&str; 3] = ["schema", "mode", "scale"];

/// Deterministic per-engine counters inside `lazy` / `exhaustive`.
const ENGINE_COUNTERS: [&str; 5] = [
    "evaluations",
    "marginal_evals",
    "delta_rescans",
    "fixups",
    "heap_pops",
];

/// Deterministic per-engine counters added by the planner-baseline `/3`
/// schema (incremental tour maintenance). Compared exactly when both
/// sides carry them; silently absent when either side predates the
/// schema bump — the cross-version comparison below stays meaningful on
/// the shared fields.
const ENGINE_COUNTERS_V3: [&str; 2] = ["tour_patches", "full_retours"];

/// Planner-baseline schema versions whose shared entry fields are
/// directly comparable (the `/3` bump only *adds* the tour counters).
const PLANNER_COMPAT: [&str; 2] = ["uavdc-planner-baseline/2", "uavdc-planner-baseline/3"];

/// Timing fields inside `lazy` / `exhaustive`.
const ENGINE_TIMINGS: [&str; 2] = ["setup_ns", "loop_ns"];

fn render(v: Option<&Json>) -> String {
    match v {
        None => "∅".to_string(),
        Some(Json::Null) => "null".to_string(),
        Some(Json::Bool(b)) => b.to_string(),
        Some(Json::Num(n)) => {
            // lint:allow(float-ord): exactness probe — integral values round-trip bit-identically
            if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Some(Json::Str(s)) => s.clone(),
        Some(other) => format!("{other:?}"),
    }
}

fn entry_key(e: &Json, x_label: &str) -> String {
    let mut key = format!(
        "{} {}={} {} seed={}",
        e.get("figure").and_then(Json::as_str).unwrap_or("?"),
        x_label,
        render(e.get(x_label)),
        e.get("algorithm").and_then(Json::as_str).unwrap_or("?"),
        render(e.get("seed")),
    );
    // Robustness entries repeat each sweep point across the fault
    // ladder; the level disambiguates the key.
    if let Some(level) = e.get("fault_level") {
        let _ = write!(key, " level={}", render(Some(level)));
    }
    // Service entries run each tuple under both engines.
    if let Some(engine) = e.get("engine") {
        let _ = write!(key, " engine={}", render(Some(engine)));
    }
    key
}

/// The sweep-coordinate field of an entry (`capacity_j` or `delta_m`).
fn x_label(e: &Json) -> &str {
    if e.get("delta_m").is_some() {
        "delta_m"
    } else {
        "capacity_j"
    }
}

/// Recursively hard-diffs two JSON values field by field. Used for
/// schemas whose entries are deterministic end to end (the robustness
/// baseline): every scalar divergence is its own report row, objects
/// walk the union of their keys, arrays pair elementwise.
fn diff_exact(rows: &mut Vec<Row>, key: &str, path: &str, a: Option<&Json>, b: Option<&Json>) {
    if a == b {
        return;
    }
    match (a, b) {
        (Some(Json::Obj(ao)), Some(Json::Obj(bo))) => {
            let mut fields: Vec<&String> = ao.keys().chain(bo.keys()).collect();
            fields.sort_unstable();
            fields.dedup();
            for field in fields {
                let sub = if path.is_empty() {
                    field.clone()
                } else {
                    format!("{path}.{field}")
                };
                diff_exact(rows, key, &sub, ao.get(field), bo.get(field));
            }
        }
        (Some(Json::Arr(aa)), Some(Json::Arr(ba))) if aa.len() == ba.len() => {
            for (i, (ae, be)) in aa.iter().zip(ba).enumerate() {
                diff_exact(rows, key, &format!("{path}[{i}]"), Some(ae), Some(be));
            }
        }
        _ => push_if_diff(rows, key, path, a, b),
    }
}

fn push_if_diff(rows: &mut Vec<Row>, key: &str, field: &str, a: Option<&Json>, b: Option<&Json>) {
    if a != b {
        rows.push(Row {
            key: key.to_string(),
            field: field.to_string(),
            baseline: render(a),
            current: render(b),
            verdict: Verdict::Diverged,
        });
    }
}

fn compare_timing(
    rows: &mut Vec<Row>,
    cfg: &CompareConfig,
    key: &str,
    field: &str,
    a: Option<&Json>,
    b: Option<&Json>,
) {
    let (Some(base), Some(cur)) = (a.and_then(Json::as_u64), b.and_then(Json::as_u64)) else {
        push_if_diff(rows, key, field, a, b); // malformed timings: hard diff
        return;
    };
    if cur <= base {
        return; // faster is never a regression
    }
    let abs = cur - base;
    let rel = abs as f64 / (base.max(1)) as f64;
    if abs >= cfg.min_abs_ns && rel > cfg.rel_tol {
        rows.push(Row {
            key: key.to_string(),
            field: field.to_string(),
            baseline: format!("{:.2} ms", base as f64 / 1e6),
            current: format!("{:.2} ms (+{:.0}%)", cur as f64 / 1e6, rel * 100.0),
            verdict: Verdict::TimingRegression,
        });
    }
}

/// Gates a throughput rate (plans/sec): *lower* is the regression, so
/// the tolerance applies to the relative drop below baseline. Rates have
/// no meaningful absolute floor, so only `rel_tol` applies.
fn compare_rate(
    rows: &mut Vec<Row>,
    cfg: &CompareConfig,
    key: &str,
    field: &str,
    a: Option<&Json>,
    b: Option<&Json>,
) {
    let (Some(base), Some(cur)) = (a.and_then(Json::as_f64), b.and_then(Json::as_f64)) else {
        push_if_diff(rows, key, field, a, b); // malformed rates: hard diff
        return;
    };
    if cur >= base || base <= 0.0 {
        return; // faster is never a regression
    }
    let rel = (base - cur) / base;
    if rel > cfg.rel_tol {
        rows.push(Row {
            key: key.to_string(),
            field: field.to_string(),
            baseline: format!("{base:.1}/s"),
            current: format!("{cur:.1}/s (-{:.0}%)", rel * 100.0),
            verdict: Verdict::TimingRegression,
        });
    }
}

/// Compares two parsed baseline documents.
///
/// Returns `Err` only when a document is too malformed to walk (missing
/// `entries` array); everything else is reported in the
/// [`CompareReport`].
pub fn compare(
    baseline: &Json,
    current: &Json,
    cfg: &CompareConfig,
) -> Result<CompareReport, String> {
    let mut report = CompareReport::default();

    for field in HEADER_EXACT {
        let (a, b) = (baseline.get(field), current.get(field));
        if a != b {
            if field == "schema" {
                let (av, bv) = (
                    a.and_then(Json::as_str).unwrap_or(""),
                    b.and_then(Json::as_str).unwrap_or(""),
                );
                // The /2 -> /3 planner-baseline bump is additive-only;
                // allow the cross-version diff so a schema bump can
                // prove its counters and hashes unchanged.
                if PLANNER_COMPAT.contains(&av) && PLANNER_COMPAT.contains(&bv) {
                    continue;
                }
            }
            report.structural.push(format!(
                "header `{field}` differs: baseline {} vs current {}",
                render(a),
                render(b)
            ));
        }
    }
    if baseline.get("seeds") != current.get("seeds") {
        report.structural.push(format!(
            "header `seeds` differ: baseline {} vs current {}",
            render(baseline.get("seeds")),
            render(current.get("seeds"))
        ));
    }

    // The service baseline carries batch-wide results in its header:
    // cache accounting is deterministic (hard diff), throughput is
    // timing (gated with the regression direction inverted for the
    // rate).
    let schema = baseline.get("schema").and_then(Json::as_str).unwrap_or("");
    let service = schema.starts_with("uavdc-service-baseline/");
    if baseline.get("repeat") != current.get("repeat") {
        report.structural.push(format!(
            "header `repeat` differs: baseline {} vs current {}",
            render(baseline.get("repeat")),
            render(current.get("repeat"))
        ));
    }
    if service {
        diff_exact(
            &mut report.rows,
            "batch",
            "cache",
            baseline.get("cache"),
            current.get("cache"),
        );
        let (bt, ct) = (baseline.get("throughput"), current.get("throughput"));
        push_if_diff(
            &mut report.rows,
            "batch",
            "throughput.requests",
            bt.and_then(|t| t.get("requests")),
            ct.and_then(|t| t.get("requests")),
        );
        compare_rate(
            &mut report.rows,
            cfg,
            "batch",
            "throughput.plans_per_sec",
            bt.and_then(|t| t.get("plans_per_sec")),
            ct.and_then(|t| t.get("plans_per_sec")),
        );
        for timing in ["wall_ns", "p50_latency_ns", "p99_latency_ns"] {
            compare_timing(
                &mut report.rows,
                cfg,
                "batch",
                &format!("throughput.{timing}"),
                bt.and_then(|t| t.get(timing)),
                ct.and_then(|t| t.get(timing)),
            );
        }
    }

    let base_entries = baseline
        .get("entries")
        .and_then(Json::as_array)
        .ok_or_else(|| "baseline has no `entries` array".to_string())?;
    let cur_entries = current
        .get("entries")
        .and_then(Json::as_array)
        .ok_or_else(|| "current has no `entries` array".to_string())?;

    // Pair by key. Keys must be unique per file — a duplicate would
    // silently shadow its twin in the map, so it is reported as a
    // structural failure instead. The BTreeMap keeps the unpaired-entry
    // report deterministic.
    let mut cur_by_key = std::collections::BTreeMap::new();
    for e in cur_entries {
        let key = entry_key(e, x_label(e));
        if cur_by_key.insert(key.clone(), e).is_some() {
            report
                .structural
                .push(format!("duplicate entry key in current: {key}"));
        }
    }

    // Robustness and service artefacts carry no per-entry timings: every
    // entry field is deterministic, so they are diffed exactly, whatever
    // their shape.
    let all_deterministic = schema.starts_with("uavdc-robustness/") || service;

    let mut base_seen = std::collections::BTreeSet::new();
    for base in base_entries {
        let xl = x_label(base);
        let key = entry_key(base, xl);
        if !base_seen.insert(key.clone()) {
            report
                .structural
                .push(format!("duplicate entry key in baseline: {key}"));
            continue;
        }
        let Some(cur) = cur_by_key.remove(&key) else {
            report.structural.push(format!(
                "entry removed (baseline only, missing from current): {key}"
            ));
            continue;
        };
        report.paired_entries += 1;

        if all_deterministic {
            diff_exact(&mut report.rows, &key, "", Some(base), Some(cur));
            continue;
        }

        for field in ["candidates", "iterations", "exhaustive_bound"] {
            push_if_diff(
                &mut report.rows,
                &key,
                field,
                base.get(field),
                cur.get(field),
            );
        }
        push_if_diff(
            &mut report.rows,
            &key,
            "plans_identical",
            base.get("plans_identical"),
            cur.get("plans_identical"),
        );
        push_if_diff(
            &mut report.rows,
            &key,
            "plan_hash",
            base.get("plan_hash"),
            cur.get("plan_hash"),
        );
        for engine in ["lazy", "exhaustive"] {
            let (be, ce) = (base.get(engine), cur.get(engine));
            for counter in ENGINE_COUNTERS {
                push_if_diff(
                    &mut report.rows,
                    &key,
                    &format!("{engine}.{counter}"),
                    be.and_then(|e| e.get(counter)),
                    ce.and_then(|e| e.get(counter)),
                );
            }
            for counter in ENGINE_COUNTERS_V3 {
                let (bv, cv) = (
                    be.and_then(|e| e.get(counter)),
                    ce.and_then(|e| e.get(counter)),
                );
                if bv.is_some() && cv.is_some() {
                    push_if_diff(
                        &mut report.rows,
                        &key,
                        &format!("{engine}.{counter}"),
                        bv,
                        cv,
                    );
                }
            }
            for timing in ENGINE_TIMINGS {
                compare_timing(
                    &mut report.rows,
                    cfg,
                    &key,
                    &format!("{engine}.{timing}"),
                    be.and_then(|e| e.get(timing)),
                    ce.and_then(|e| e.get(timing)),
                );
            }
        }
    }
    for key in cur_by_key.keys() {
        report.structural.push(format!(
            "entry added (current only, missing from baseline): {key}"
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn doc(loop_ns: u64, evals: u64, hash: &str) -> Json {
        parse(&format!(
            r#"{{"schema": "uavdc-planner-baseline/2", "mode": "quick", "scale": 0.2,
                "seeds": [39582], "threads": 2,
                "entries": [
                  {{"figure": "fig4", "delta_m": 5, "algorithm": "Algorithm 2",
                    "seed": 39582, "candidates": 100, "iterations": 10,
                    "exhaustive_bound": 1000, "plans_identical": true,
                    "plan_hash": "{hash}",
                    "lazy": {{"evaluations": {evals}, "marginal_evals": 5,
                             "delta_rescans": 0, "fixups": 0, "heap_pops": 30,
                             "setup_ns": 1000000, "loop_ns": {loop_ns}}},
                    "exhaustive": {{"evaluations": 1000, "marginal_evals": 0,
                             "delta_rescans": 0, "fixups": 0, "heap_pops": 0,
                             "setup_ns": 1000000, "loop_ns": 9000000}}}}
                ]}}"#
        ))
        .expect("fixture parses")
    }

    #[test]
    fn identical_documents_are_clean() {
        let a = doc(8_000_000, 120, "aa");
        let r = compare(&a, &a, &CompareConfig::default()).expect("walkable");
        assert!(!r.has_divergence());
        assert!(!r.has_timing_regression());
        assert_eq!(r.paired_entries, 1);
        assert!(r.markdown().contains("No differences"));
    }

    #[test]
    fn eval_count_change_diverges() {
        let a = doc(8_000_000, 120, "aa");
        let b = doc(8_000_000, 121, "aa");
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(r.has_divergence());
        assert!(r.rows.iter().any(|row| row.field == "lazy.evaluations"));
    }

    #[test]
    fn plan_hash_change_diverges() {
        let a = doc(8_000_000, 120, "aa");
        let b = doc(8_000_000, 120, "bb");
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(r.has_divergence());
    }

    #[test]
    fn timing_jitter_within_tolerance_passes() {
        let a = doc(8_000_000, 120, "aa");
        let b = doc(11_000_000, 120, "aa"); // +37% < 50% default rel_tol
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(!r.has_divergence());
        assert!(!r.has_timing_regression());
    }

    #[test]
    fn large_timing_jump_is_a_regression_not_divergence() {
        let a = doc(8_000_000, 120, "aa");
        let b = doc(40_000_000, 120, "aa"); // 5x, far over tolerance
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(!r.has_divergence());
        assert!(r.has_timing_regression());
        assert!(r.markdown().contains("timing regression"));
    }

    #[test]
    fn small_absolute_timing_delta_never_fails() {
        let a = doc(100, 120, "aa");
        let b = doc(1_000_000, 120, "aa"); // 10000x but < min_abs_ns
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(!r.has_timing_regression());
    }

    #[test]
    fn getting_faster_is_fine() {
        let a = doc(80_000_000, 120, "aa");
        let b = doc(8_000_000, 120, "aa");
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(!r.has_divergence());
        assert!(!r.has_timing_regression());
    }

    #[test]
    fn header_mismatch_is_structural() {
        let a = doc(8_000_000, 120, "aa");
        let mut b = doc(8_000_000, 120, "aa");
        if let Json::Obj(map) = &mut b {
            map.insert("mode".to_string(), Json::Str("full".to_string()));
        }
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(r.has_divergence());
        assert!(r.structural.iter().any(|s| s.contains("mode")));
    }

    #[test]
    fn unpaired_entries_are_structural() {
        let a = doc(8_000_000, 120, "aa");
        let mut b = doc(8_000_000, 120, "aa");
        if let Json::Obj(map) = &mut b {
            map.insert("entries".to_string(), Json::Arr(Vec::new()));
        }
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(r.has_divergence());
        assert_eq!(r.paired_entries, 0);
    }

    fn doc_v3(patches: u64, retours: u64, hash: &str) -> Json {
        parse(&format!(
            r#"{{"schema": "uavdc-planner-baseline/3", "mode": "quick", "scale": 0.2,
                "seeds": [39582], "threads": 2,
                "entries": [
                  {{"figure": "fig4", "delta_m": 5, "algorithm": "Algorithm 2",
                    "seed": 39582, "candidates": 100, "iterations": 10,
                    "exhaustive_bound": 1000, "plans_identical": true,
                    "plan_hash": "{hash}",
                    "lazy": {{"evaluations": 120, "marginal_evals": 5,
                             "delta_rescans": 0, "fixups": 0, "heap_pops": 30,
                             "tour_patches": {patches}, "full_retours": {retours},
                             "setup_ns": 1000000, "loop_ns": 8000000}},
                    "exhaustive": {{"evaluations": 1000, "marginal_evals": 0,
                             "delta_rescans": 0, "fixups": 0, "heap_pops": 0,
                             "tour_patches": {patches}, "full_retours": {retours},
                             "setup_ns": 1000000, "loop_ns": 9000000}}}}
                ]}}"#
        ))
        .expect("fixture parses")
    }

    #[test]
    fn schema_bump_with_shared_fields_unchanged_is_clean() {
        // A /2 baseline vs a /3 current: the added tour counters exist on
        // one side only, so only the shared fields gate — exit clean when
        // hashes and the v2 counters are frozen.
        let v2 = doc(8_000_000, 120, "aa");
        let v3 = doc_v3(40, 0, "aa");
        let r = compare(&v2, &v3, &CompareConfig::default()).expect("walkable");
        assert!(!r.has_divergence(), "{:?}", r);
        assert_eq!(r.paired_entries, 1);
        // And in the downgrade direction.
        let r = compare(&v3, &v2, &CompareConfig::default()).expect("walkable");
        assert!(!r.has_divergence());
    }

    #[test]
    fn tour_counter_drift_diverges_when_both_sides_have_them() {
        let a = doc_v3(40, 0, "aa");
        let b = doc_v3(41, 0, "aa");
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(r.has_divergence());
        assert!(r.rows.iter().any(|row| row.field == "lazy.tour_patches"));
        let c = doc_v3(40, 2, "aa");
        let r = compare(&a, &c, &CompareConfig::default()).expect("walkable");
        assert!(r.has_divergence());
        assert!(r.rows.iter().any(|row| row.field == "lazy.full_retours"));
    }

    #[test]
    fn unrelated_schema_mismatch_is_still_structural() {
        let a = doc(8_000_000, 120, "aa");
        let mut b = doc(8_000_000, 120, "aa");
        if let Json::Obj(map) = &mut b {
            map.insert(
                "schema".to_string(),
                Json::Str("uavdc-service-baseline/1".to_string()),
            );
        }
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(r.has_divergence());
        assert!(r.structural.iter().any(|s| s.contains("schema")));
    }

    fn robustness_doc(trace_fp: &str, drops: u64) -> Json {
        parse(&format!(
            r#"{{"schema": "uavdc-robustness/1", "mode": "quick", "scale": 0.2,
                "seeds": [39582], "levels": ["calm", "storm"],
                "entries": [
                  {{"figure": "fig4", "delta_m": 5, "algorithm": "Algorithm 2",
                    "seed": 39582, "fault_level": 0, "fault_name": "calm",
                    "delivered_mb": 812.5, "planned_mb": 812.5,
                    "delivered_frac": 1, "energy_bits": "4114b5318b4c842a",
                    "trace_fp": "aaaaaaaaaaaaaaaa", "executed_fp": "cccccccccccccccc",
                    "replans": 0, "trims": 0, "drops": 0, "safe": true}},
                  {{"figure": "fig4", "delta_m": 5, "algorithm": "Algorithm 2",
                    "seed": 39582, "fault_level": 1, "fault_name": "storm",
                    "delivered_mb": 444.25, "planned_mb": 812.5,
                    "delivered_frac": 0.55, "energy_bits": "4114b5318b4c842b",
                    "trace_fp": "{trace_fp}", "executed_fp": "dddddddddddddddd",
                    "replans": 1, "trims": 2, "drops": {drops}, "safe": true}}
                ]}}"#
        ))
        .expect("fixture parses")
    }

    #[test]
    fn robustness_identical_documents_are_clean() {
        let a = robustness_doc("bbbbbbbbbbbbbbbb", 3);
        let r = compare(&a, &a, &CompareConfig::default()).expect("walkable");
        assert!(!r.has_divergence());
        // Both fault levels of the sweep point pair separately.
        assert_eq!(r.paired_entries, 2);
    }

    #[test]
    fn duplicate_entry_keys_are_structural_not_silent() {
        let a = doc(8_000_000, 120, "aa");
        let mut b = doc(8_000_000, 120, "aa");
        if let Json::Obj(map) = &mut b {
            if let Some(Json::Arr(entries)) = map.get_mut("entries") {
                let twin = entries[0].clone();
                entries.push(twin);
            }
        }
        // current has the same key twice: must fail, both directions.
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(r.has_divergence());
        assert!(r
            .structural
            .iter()
            .any(|s| s.contains("duplicate entry key in current")));
        let r = compare(&b, &a, &CompareConfig::default()).expect("walkable");
        assert!(r.has_divergence());
        assert!(r
            .structural
            .iter()
            .any(|s| s.contains("duplicate entry key in baseline")));
    }

    #[test]
    fn entry_only_in_current_fails_hard() {
        let mut a = doc(8_000_000, 120, "aa");
        let b = doc(8_000_000, 120, "aa");
        if let Json::Obj(map) = &mut a {
            map.insert("entries".to_string(), Json::Arr(Vec::new()));
        }
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(r.has_divergence());
        assert!(r
            .structural
            .iter()
            .any(|s| s.contains("entry added (current only")));
    }

    fn service_doc(plans_per_sec: f64, evals: u64, hash: &str) -> Json {
        parse(&format!(
            r#"{{"schema": "uavdc-service-baseline/1", "mode": "quick", "scale": 0.2,
                "seeds": [39582], "repeat": 2, "threads": 2,
                "throughput": {{"requests": 4, "wall_ns": 50000000,
                    "plans_per_sec": {plans_per_sec},
                    "p50_latency_ns": 2000000, "p99_latency_ns": 8000000}},
                "cache": {{"unique_instances": 1, "artifacts_built": 2,
                    "requests_shared": 2}},
                "entries": [
                  {{"figure": "service", "capacity_j": 300000,
                    "algorithm": "Algorithm 2", "seed": 39582, "engine": "lazy",
                    "candidates": 100, "iterations": 10, "evaluations": {evals},
                    "plan_hash": "{hash}"}},
                  {{"figure": "service", "capacity_j": 300000,
                    "algorithm": "Algorithm 2", "seed": 39582,
                    "engine": "exhaustive", "candidates": 100, "iterations": 10,
                    "evaluations": 1000, "plan_hash": "{hash}"}}
                ]}}"#
        ))
        .expect("fixture parses")
    }

    #[test]
    fn service_identical_documents_are_clean() {
        let a = service_doc(80.0, 120, "aa");
        let r = compare(&a, &a, &CompareConfig::default()).expect("walkable");
        assert!(!r.has_divergence());
        assert!(!r.has_timing_regression());
        // The two engines of the tuple pair as distinct entries.
        assert_eq!(r.paired_entries, 2);
    }

    #[test]
    fn service_counter_or_hash_drift_diverges() {
        let a = service_doc(80.0, 120, "aa");
        let b = service_doc(80.0, 121, "aa");
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(r.has_divergence());
        assert!(r
            .rows
            .iter()
            .any(|row| row.field == "evaluations" && row.key.contains("engine=lazy")));
        let c = service_doc(80.0, 120, "bb");
        let r = compare(&a, &c, &CompareConfig::default()).expect("walkable");
        assert!(r.has_divergence());
        assert!(r.rows.iter().any(|row| row.field == "plan_hash"));
    }

    #[test]
    fn service_cache_accounting_is_deterministic() {
        let a = service_doc(80.0, 120, "aa");
        let mut b = service_doc(80.0, 120, "aa");
        if let Json::Obj(map) = &mut b {
            if let Some(Json::Obj(cache)) = map.get_mut("cache") {
                cache.insert("requests_shared".to_string(), Json::Num(7.0));
            }
        }
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(r.has_divergence());
        assert!(r
            .rows
            .iter()
            .any(|row| row.field == "cache.requests_shared"));
    }

    #[test]
    fn service_throughput_drop_is_timing_not_divergence() {
        let a = service_doc(80.0, 120, "aa");
        let b = service_doc(20.0, 120, "aa"); // -75%, beyond 50% rel_tol
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(!r.has_divergence());
        assert!(r.has_timing_regression());
        assert!(r
            .rows
            .iter()
            .any(|row| row.field == "throughput.plans_per_sec"));
        // Mild jitter passes; getting faster always passes.
        let c = service_doc(60.0, 120, "aa"); // -25% < 50%
        let r = compare(&a, &c, &CompareConfig::default()).expect("walkable");
        assert!(!r.has_timing_regression());
        let d = service_doc(200.0, 120, "aa");
        let r = compare(&a, &d, &CompareConfig::default()).expect("walkable");
        assert!(!r.has_timing_regression());
    }

    #[test]
    fn robustness_entries_hard_diff_every_field() {
        let a = robustness_doc("bbbbbbbbbbbbbbbb", 3);
        let b = robustness_doc("bbbbbbbbbbbbbbbc", 4); // flipped fp bit + drop count
        let r = compare(&a, &b, &CompareConfig::default()).expect("walkable");
        assert!(r.has_divergence());
        assert!(!r.has_timing_regression(), "no timings in this schema");
        assert!(r.rows.iter().any(|row| row.field == "trace_fp"));
        assert!(r.rows.iter().any(|row| row.field == "drops"));
        // The diverging rows belong to the storm-level entry only.
        assert!(r.rows.iter().all(|row| row.key.ends_with("level=1")));
    }
}
