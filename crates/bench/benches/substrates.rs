//! Microbenchmarks of the substrate crates: spatial index queries,
//! candidate-set construction, Christofides, blossom matching, and the
//! discrete-event simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uavdc_core::{Alg2Planner, CandidateSet, Planner};
use uavdc_geom::{KdTree, Point2, SpatialGrid};
use uavdc_graph::christofides::christofides;
use uavdc_graph::matching::{min_weight_perfect_matching_with, MatchingBackend};
use uavdc_graph::DistMatrix;
use uavdc_net::generator::{uniform, ScenarioParams};
use uavdc_sim::{simulate, SimConfig};

fn bench_spatial_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_spatial_index");
    let pts: Vec<Point2> = (0..5000)
        .map(|i| Point2::new(((i * 37) % 1000) as f64, ((i * 61) % 1000) as f64))
        .collect();
    group.bench_function("grid_build_5000", |b| {
        b.iter(|| SpatialGrid::build(&pts, 50.0))
    });
    group.bench_function("kdtree_build_5000", |b| b.iter(|| KdTree::build(&pts)));
    let grid = SpatialGrid::build(&pts, 50.0);
    let tree = KdTree::build(&pts);
    group.bench_function("grid_query_radius_50", |b| {
        let mut buf = Vec::new();
        b.iter(|| grid.query_radius_into(Point2::new(500.0, 500.0), 50.0, &mut buf));
    });
    group.bench_function("kdtree_query_radius_50", |b| {
        b.iter(|| tree.query_radius(Point2::new(500.0, 500.0), 50.0));
    });
    group.bench_function("kdtree_k_nearest_8", |b| {
        b.iter(|| tree.k_nearest(Point2::new(500.0, 500.0), 8));
    });
    group.finish();
}

fn bench_candidates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_candidates");
    group.sample_size(10);
    let scenario = uniform(&ScenarioParams::default().scaled(0.3), 1);
    for delta in [5.0, 10.0, 20.0] {
        group.bench_with_input(BenchmarkId::new("build", delta as u64), &delta, |b, &d| {
            b.iter(|| CandidateSet::build(&scenario, d));
        });
    }
    group.finish();
}

fn bench_graph_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_graph");
    group.sample_size(10);
    for n in [50usize, 100] {
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|i| (((i * 37) % 1000) as f64, ((i * 61) % 1000) as f64))
            .collect();
        let m = DistMatrix::from_euclidean(&pts);
        group.bench_with_input(BenchmarkId::new("christofides", n), &m, |b, m| {
            b.iter(|| christofides(m));
        });
        // Matching on an even subset.
        let even = m.submatrix(&(0..(n & !1)).collect::<Vec<_>>());
        group.bench_with_input(BenchmarkId::new("blossom_matching", n), &even, |b, m| {
            b.iter(|| min_weight_perfect_matching_with(m, MatchingBackend::Blossom));
        });
    }
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_simulator");
    group.sample_size(20);
    let scenario = uniform(&ScenarioParams::default().scaled(0.2), 1);
    let plan = Alg2Planner::default().plan(&scenario);
    group.bench_function("simulate_plan", |b| {
        b.iter(|| simulate(&scenario, &plan, &SimConfig::default()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_spatial_index,
    bench_candidates,
    bench_graph_algorithms,
    bench_simulator
);
criterion_main!(benches);
