//! Criterion bench for Fig. 4: Algorithms 2/3 runtime versus grid edge δ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uavdc_core::{Alg2Config, Alg2Planner, Alg3Config, Alg3Planner, Planner};
use uavdc_net::generator::{uniform, ScenarioParams};

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_delta_sweep");
    group.sample_size(10);
    let params = ScenarioParams::default().scaled(0.15);
    let scenario = uniform(&params, 1);
    for delta in [5.0, 15.0, 30.0] {
        group.bench_with_input(BenchmarkId::new("alg2", delta as u64), &scenario, |b, s| {
            let p = Alg2Planner::new(Alg2Config {
                delta,
                ..Alg2Config::default()
            });
            b.iter(|| p.plan(s));
        });
        for k in [2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("alg3_k{k}"), delta as u64),
                &scenario,
                |b, s| {
                    let p = Alg3Planner::new(Alg3Config {
                        delta,
                        k,
                        ..Alg3Config::default()
                    });
                    b.iter(|| p.plan(s));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
