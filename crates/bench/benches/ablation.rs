//! Ablation benches for the design choices called out in DESIGN.md §6:
//! Algorithm 2's candidate ranking (full Christofides per candidate vs
//! cheapest-insertion delta), the Christofides matching backend, the
//! orienteering backend, and dominated-candidate pruning.

use criterion::{criterion_group, criterion_main, Criterion};
use uavdc_core::{Alg2Config, Alg2Planner, Planner, TourMode};
use uavdc_graph::christofides::{christofides_with, ChristofidesConfig};
use uavdc_graph::matching::MatchingBackend;
use uavdc_graph::DistMatrix;
use uavdc_net::generator::{uniform, ScenarioParams};
use uavdc_orienteering::{solve, Backend, GraspConfig, OrienteeringInstance};

fn bench_alg2_tour_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_alg2_tour_mode");
    group.sample_size(10);
    // Small instance so PaperChristofides stays tractable.
    let params = ScenarioParams::default().scaled(0.05);
    let scenario = uniform(&params, 1);
    group.bench_function("fast_insertion", |b| {
        let p = Alg2Planner::new(Alg2Config {
            delta: 20.0,
            tour_mode: TourMode::FastInsertion,
            ..Alg2Config::default()
        });
        b.iter(|| p.plan(&scenario));
    });
    group.bench_function("paper_christofides", |b| {
        let p = Alg2Planner::new(Alg2Config {
            delta: 20.0,
            tour_mode: TourMode::PaperChristofides,
            ..Alg2Config::default()
        });
        b.iter(|| p.plan(&scenario));
    });
    group.finish();
}

fn bench_matching_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_christofides_matching");
    group.sample_size(10);
    let pts: Vec<(f64, f64)> = (0..60)
        .map(|i| (((i * 37) % 500) as f64, ((i * 61) % 500) as f64))
        .collect();
    let m = DistMatrix::from_euclidean(&pts);
    for (name, backend) in [
        ("blossom", MatchingBackend::Blossom),
        ("greedy", MatchingBackend::Greedy),
    ] {
        group.bench_function(name, |b| {
            let cfg = ChristofidesConfig {
                matching: backend,
                polish: false,
            };
            b.iter(|| christofides_with(&m, &cfg));
        });
    }
    group.finish();
}

fn bench_orienteering_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_orienteering_backend");
    group.sample_size(10);
    let pts: Vec<(f64, f64)> = (0..40)
        .map(|i| (((i * 41) % 300) as f64, ((i * 73) % 300) as f64))
        .collect();
    let m = DistMatrix::from_euclidean(&pts);
    let prizes: Vec<f64> = (0..40).map(|i| 1.0 + (i % 7) as f64).collect();
    let inst = OrienteeringInstance::new(m, prizes, 0, 500.0);
    group.bench_function("greedy", |b| b.iter(|| solve(&inst, Backend::Greedy)));
    group.bench_function("grasp_default", |b| {
        b.iter(|| solve(&inst, Backend::Grasp(GraspConfig::default())))
    });
    group.bench_function("grasp_fast", |b| {
        b.iter(|| solve(&inst, Backend::Grasp(GraspConfig::fast())))
    });
    group.finish();
}

fn bench_dominance_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dominance_pruning");
    group.sample_size(10);
    let params = ScenarioParams::default().scaled(0.1);
    let scenario = uniform(&params, 1);
    for (name, prune) in [("pruned", true), ("unpruned", false)] {
        group.bench_function(name, |b| {
            let p = Alg2Planner::new(Alg2Config {
                delta: 10.0,
                prune_dominated: prune,
                ..Alg2Config::default()
            });
            b.iter(|| p.plan(&scenario));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_alg2_tour_mode,
    bench_matching_backends,
    bench_orienteering_backends,
    bench_dominance_pruning
);
criterion_main!(benches);
