//! Criterion bench for Fig. 3: Algorithm 1 vs benchmark planner runtime
//! over the battery sweep (scaled-down instances so the suite stays
//! fast; the full-scale figure comes from the `experiments` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uavdc_core::{Alg1Config, Alg1Planner, BenchmarkPlanner, Planner};
use uavdc_net::generator::{uniform, ScenarioParams};
use uavdc_net::units::Joules;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_battery_sweep");
    group.sample_size(10);
    for e in [3.0e5, 6.0e5, 9.0e5] {
        let params = ScenarioParams::default()
            .scaled(0.15)
            .with_capacity(Joules(e));
        let scenario = uniform(&params, 1);
        group.bench_with_input(BenchmarkId::new("alg1", e as u64), &scenario, |b, s| {
            let planner = Alg1Planner::new(Alg1Config::default());
            b.iter(|| planner.plan(s));
        });
        group.bench_with_input(
            BenchmarkId::new("benchmark", e as u64),
            &scenario,
            |b, s| {
                b.iter(|| BenchmarkPlanner.plan(s));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
