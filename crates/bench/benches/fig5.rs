//! Criterion bench for Fig. 5: Algorithms 2/3 and benchmark runtime
//! versus battery capacity at δ = 10 m.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uavdc_core::{Alg2Planner, Alg3Planner, BenchmarkPlanner, Planner};
use uavdc_net::generator::{uniform, ScenarioParams};
use uavdc_net::units::Joules;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_battery_sweep_overlap");
    group.sample_size(10);
    for e in [3.0e5, 6.0e5, 9.0e5] {
        let params = ScenarioParams::default()
            .scaled(0.15)
            .with_capacity(Joules(e));
        let scenario = uniform(&params, 1);
        group.bench_with_input(BenchmarkId::new("alg2", e as u64), &scenario, |b, s| {
            let p = Alg2Planner::default();
            b.iter(|| p.plan(s));
        });
        group.bench_with_input(BenchmarkId::new("alg3_k4", e as u64), &scenario, |b, s| {
            let p = Alg3Planner::with_k(4);
            b.iter(|| p.plan(s));
        });
        group.bench_with_input(
            BenchmarkId::new("benchmark", e as u64),
            &scenario,
            |b, s| {
                b.iter(|| BenchmarkPlanner.plan(s));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
