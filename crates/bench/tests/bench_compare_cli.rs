//! End-to-end tests of the `bench_compare` binary: exit codes and the
//! markdown summary, driven through the real CLI.

use std::path::PathBuf;
use std::process::Command;

const BASELINE: &str = r#"{
  "schema": "uavdc-planner-baseline/2",
  "mode": "quick",
  "scale": 0.2,
  "seeds": [39582],
  "threads": 2,
  "entries": [
    {"figure": "fig4", "delta_m": 5, "algorithm": "Algorithm 2", "seed": 39582,
     "candidates": 100, "iterations": 12, "exhaustive_bound": 1200,
     "plans_identical": true, "plan_hash": "00aa11bb22cc33dd",
     "lazy": {"evaluations": 250, "marginal_evals": 30, "delta_rescans": 2,
              "fixups": 1, "heap_pops": 60, "setup_ns": 2000000, "loop_ns": 8000000},
     "exhaustive": {"evaluations": 1200, "marginal_evals": 0, "delta_rescans": 0,
              "fixups": 0, "heap_pops": 0, "setup_ns": 2000000, "loop_ns": 30000000}}
  ]
}"#;

/// Writes `content` under a unique name in the target tmp dir and
/// returns the path.
fn fixture(name: &str, content: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write fixture");
    path
}

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn identical_files_exit_zero() {
    let a = fixture("identical_a.json", BASELINE);
    let b = fixture("identical_b.json", BASELINE);
    let out = run(&[a.to_str().expect("utf8"), b.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn seeded_eval_count_regression_exits_nonzero() {
    // One extra evaluation: deterministic divergence, must hard-fail.
    let a = fixture("evalreg_a.json", BASELINE);
    let b = fixture(
        "evalreg_b.json",
        &BASELINE.replace("\"evaluations\": 250", "\"evaluations\": 251"),
    );
    let out = run(&[a.to_str().expect("utf8"), b.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("lazy.evaluations"), "{stderr}");
}

#[test]
fn plan_hash_drift_exits_nonzero() {
    let a = fixture("hashdrift_a.json", BASELINE);
    let b = fixture(
        "hashdrift_b.json",
        &BASELINE.replace("00aa11bb22cc33dd", "ffffffffffffffff"),
    );
    let out = run(&[a.to_str().expect("utf8"), b.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn timing_only_jitter_exits_zero() {
    // Loop time up 40% — below the default 50% tolerance.
    let a = fixture("jitter_a.json", BASELINE);
    let b = fixture(
        "jitter_b.json",
        &BASELINE.replace("\"loop_ns\": 8000000", "\"loop_ns\": 11200000"),
    );
    let out = run(&[a.to_str().expect("utf8"), b.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn big_timing_regression_informational_without_gate() {
    let a = fixture("bigtiming_a.json", BASELINE);
    let b = fixture(
        "bigtiming_b.json",
        &BASELINE.replace("\"loop_ns\": 8000000", "\"loop_ns\": 80000000"),
    );
    let out = run(&[a.to_str().expect("utf8"), b.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let gated = run(&[
        a.to_str().expect("utf8"),
        b.to_str().expect("utf8"),
        "--gate-timings",
    ]);
    assert_eq!(gated.status.code(), Some(2), "{gated:?}");
}

#[test]
fn summary_file_gets_markdown_table() {
    let a = fixture("summary_a.json", BASELINE);
    let b = fixture(
        "summary_b.json",
        &BASELINE.replace("\"evaluations\": 250", "\"evaluations\": 999"),
    );
    let summary = fixture("summary_out.md", "");
    let out = run(&[
        a.to_str().expect("utf8"),
        b.to_str().expect("utf8"),
        "--summary",
        summary.to_str().expect("utf8"),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let md = std::fs::read_to_string(&summary).expect("summary written");
    assert!(md.contains("| entry | field |"), "{md}");
    assert!(md.contains("diverged"), "{md}");
}

#[test]
fn usage_errors_exit_three() {
    let out = run(&["only-one-arg.json"]);
    assert_eq!(out.status.code(), Some(3));
    let a = fixture("badjson_a.json", "{not json");
    let b = fixture("badjson_b.json", BASELINE);
    let out = run(&[a.to_str().expect("utf8"), b.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(3));
}
