//! Property tests of the batch planning service
//! (`uavdc_bench::service`): the artifact cache must be *invisible* to
//! plan output. For random request batches across planners × engines ×
//! thread counts, a cached run and a cold run (and runs at different
//! thread counts) must produce bit-identical `CollectionPlan`
//! fingerprints and identical deterministic counters for every request,
//! and the cache hit/miss accounting must be a pure function of the
//! batch (thread-count-invariant).

use proptest::prelude::*;
use uavdc_bench::service::{run_batch, BatchReport, PlanRequest, ServiceAlgorithm, ServiceConfig};
use uavdc_core::EngineMode;
use uavdc_net::units::Joules;

/// The deterministic projection of a batch: everything except timings.
fn deterministic(r: &BatchReport) -> Vec<(u64, usize, u64, u64)> {
    r.outcomes
        .iter()
        .map(|o| (o.plan_hash, o.candidates, o.iterations, o.evaluations))
        .collect()
}

/// Decodes a compact request tuple drawn by proptest into a
/// [`PlanRequest`]. Seeds and capacities are drawn from small pools so
/// batches actually collide on instances and artifacts (the interesting
/// regime for the cache).
fn decode(seed_ix: u8, cap_ix: u8, alg_ix: u8, engine_ix: u8) -> PlanRequest {
    let seeds = [3u64, 7, 11];
    let caps = [2.0e5, 3.0e5, 4.5e5, 6.0e5];
    let algorithms = [
        ServiceAlgorithm::Alg2 { delta: 20.0 },
        ServiceAlgorithm::Alg2 { delta: 25.0 },
        ServiceAlgorithm::Alg3 { delta: 20.0, k: 2 },
        ServiceAlgorithm::Alg3 { delta: 20.0, k: 4 },
        ServiceAlgorithm::Benchmark,
    ];
    let engines = [EngineMode::Lazy, EngineMode::Exhaustive];
    PlanRequest {
        seed: seeds[seed_ix as usize % seeds.len()],
        capacity: Joules(caps[cap_ix as usize % caps.len()]),
        algorithm: algorithms[alg_ix as usize % algorithms.len()],
        engine: engines[engine_ix as usize % engines.len()],
    }
}

fn cfg(scale: f64, threads: usize, reuse: bool) -> ServiceConfig {
    ServiceConfig {
        scale,
        threads,
        reuse_artifacts: reuse,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline invisibility property: cached ≡ cold, bit for bit,
    /// for every request in a random batch, at whatever thread count.
    #[test]
    fn cached_run_is_bit_identical_to_cold_run(
        tuples in proptest::collection::vec((0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255), 1..24),
        warm_threads in 1usize..5,
        cold_threads in 1usize..5,
    ) {
        let requests: Vec<PlanRequest> =
            tuples.iter().map(|&(s, c, a, e)| decode(s, c, a, e)).collect();
        let warm = run_batch(&cfg(0.05, warm_threads, true), &requests);
        let cold = run_batch(&cfg(0.05, cold_threads, false), &requests);
        prop_assert_eq!(warm.outcomes.len(), requests.len());
        prop_assert_eq!(deterministic(&warm), deterministic(&cold));
        // Cold mode never consults the cache.
        prop_assert_eq!(cold.cache_hits, 0);
        prop_assert_eq!(cold.cache_misses, 0);
    }

    /// Thread-count invariance of a cached batch, including the cache
    /// accounting (hits and misses count request/artifact structure, not
    /// scheduling).
    #[test]
    fn thread_count_is_invisible_to_cached_batches(
        tuples in proptest::collection::vec((0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255), 1..24),
        threads_a in 1usize..5,
        threads_b in 1usize..5,
    ) {
        let requests: Vec<PlanRequest> =
            tuples.iter().map(|&(s, c, a, e)| decode(s, c, a, e)).collect();
        let a = run_batch(&cfg(0.05, threads_a, true), &requests);
        let b = run_batch(&cfg(0.05, threads_b, true), &requests);
        prop_assert_eq!(deterministic(&a), deterministic(&b));
        prop_assert_eq!(a.cache_hits, b.cache_hits);
        prop_assert_eq!(a.cache_misses, b.cache_misses);
        prop_assert_eq!(a.unique_instances, b.unique_instances);
        prop_assert_eq!(
            a.report.counter("service.cache_hits"),
            b.report.counter("service.cache_hits")
        );
    }

    /// Replicated requests (the same tuple appearing many times in one
    /// batch) all resolve to the same outcome — a client cannot tell
    /// whether its plan came from the first build or a shared artifact.
    #[test]
    fn replicas_within_a_batch_agree(
        s in 0u8..=255, c in 0u8..=255, a in 0u8..=255, e in 0u8..=255,
        copies in 2usize..8,
        threads in 1usize..5,
    ) {
        let requests: Vec<PlanRequest> = (0..copies).map(|_| decode(s, c, a, e)).collect();
        let batch = run_batch(&cfg(0.05, threads, true), &requests);
        let det = deterministic(&batch);
        prop_assert!(det.windows(2).all(|w| w[0] == w[1]));
        // One artifact built, every other request shares it.
        prop_assert_eq!(batch.cache_misses, 1);
        prop_assert_eq!(batch.cache_hits, copies as u64 - 1);
    }
}
