//! Oversubscription sweep of the batch planning service
//! (`uavdc_bench::service::run_batch`): when the worker pool is larger
//! than the request count — the regime where work stealing, empty chunks
//! and idle workers are guaranteed — every deterministic field of every
//! outcome must stay bit-identical to the single-threaded reference,
//! warm or cold, including the incremental-tour counters
//! (`tour_patches`, `full_retours`) and the cache accounting.

use proptest::prelude::*;
use uavdc_bench::service::{run_batch, BatchReport, PlanRequest, ServiceAlgorithm, ServiceConfig};
use uavdc_core::EngineMode;
use uavdc_net::units::Joules;

/// Everything except timings, per request.
fn deterministic(r: &BatchReport) -> Vec<(u64, usize, u64, u64, u64, u64)> {
    r.outcomes
        .iter()
        .map(|o| {
            (
                o.plan_hash,
                o.candidates,
                o.iterations,
                o.evaluations,
                o.tour_patches,
                o.full_retours,
            )
        })
        .collect()
}

/// Small request pools so batches collide on instances and artifacts.
fn decode(seed_ix: u8, cap_ix: u8, alg_ix: u8, engine_ix: u8) -> PlanRequest {
    let seeds = [5u64, 9];
    let caps = [2.5e5, 4.0e5, 5.5e5];
    let algorithms = [
        ServiceAlgorithm::Alg2 { delta: 20.0 },
        ServiceAlgorithm::Alg3 { delta: 20.0, k: 2 },
        ServiceAlgorithm::Benchmark,
    ];
    let engines = [EngineMode::Lazy, EngineMode::Exhaustive];
    PlanRequest {
        seed: seeds[seed_ix as usize % seeds.len()],
        capacity: Joules(caps[cap_ix as usize % caps.len()]),
        algorithm: algorithms[alg_ix as usize % algorithms.len()],
        engine: engines[engine_ix as usize % engines.len()],
    }
}

fn cfg(threads: usize, reuse: bool) -> ServiceConfig {
    ServiceConfig {
        scale: 0.05,
        threads,
        reuse_artifacts: reuse,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Warm batches: threads strictly greater than the request count
    /// must not change a single deterministic bit, nor the cache
    /// hit/miss split.
    #[test]
    fn oversubscribed_warm_batch_is_bit_identical(
        tuples in proptest::collection::vec((0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255), 1..6),
        extra in 1usize..8,
    ) {
        let requests: Vec<PlanRequest> =
            tuples.iter().map(|&(s, c, a, e)| decode(s, c, a, e)).collect();
        let over_threads = requests.len() + extra;
        let reference = run_batch(&cfg(1, true), &requests);
        let over = run_batch(&cfg(over_threads, true), &requests);
        prop_assert_eq!(over.threads, over_threads, "thread override ignored");
        prop_assert_eq!(deterministic(&over), deterministic(&reference));
        prop_assert_eq!(over.cache_hits, reference.cache_hits);
        prop_assert_eq!(over.cache_misses, reference.cache_misses);
        prop_assert_eq!(over.unique_instances, reference.unique_instances);
    }

    /// Cold batches (no artifact sharing): oversubscription must still
    /// be invisible, and cold mode never touches the cache regardless of
    /// how many idle workers are around.
    #[test]
    fn oversubscribed_cold_batch_is_bit_identical(
        tuples in proptest::collection::vec((0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255), 1..5),
        extra in 1usize..6,
    ) {
        let requests: Vec<PlanRequest> =
            tuples.iter().map(|&(s, c, a, e)| decode(s, c, a, e)).collect();
        let reference = run_batch(&cfg(1, false), &requests);
        let over = run_batch(&cfg(requests.len() + extra, false), &requests);
        prop_assert_eq!(deterministic(&over), deterministic(&reference));
        prop_assert_eq!(over.cache_hits, 0);
        prop_assert_eq!(over.cache_misses, 0);
    }
}

/// A single request on a wide pool: the degenerate 1-request case where
/// every worker but one is idle in every phase.
#[test]
fn single_request_on_wide_pool() {
    let request = PlanRequest {
        seed: 5,
        capacity: Joules(4.0e5),
        algorithm: ServiceAlgorithm::Alg2 { delta: 20.0 },
        engine: EngineMode::Lazy,
    };
    let reference = run_batch(&cfg(1, true), std::slice::from_ref(&request));
    let wide = run_batch(&cfg(16, true), std::slice::from_ref(&request));
    assert_eq!(wide.threads, 16);
    assert_eq!(deterministic(&wide), deterministic(&reference));
    // Alg2 fast-insertion splices every emitted stop: the counter must
    // travel through the service layer intact.
    assert!(
        wide.outcomes[0].tour_patches > 0,
        "tour_patches lost in the service path"
    );
    assert_eq!(wide.outcomes[0].full_retours, 0);
}

/// An empty batch must survive any pool width.
#[test]
fn empty_batch_is_fine_at_any_width() {
    let report = run_batch(&cfg(12, true), &[]);
    assert!(report.outcomes.is_empty());
    assert_eq!(report.cache_hits, 0);
    assert_eq!(report.cache_misses, 0);
}
