//! Dependency-free instrumentation for the uavdc workspace: hierarchical
//! spans, named counters, and log2-bucketed histograms behind a
//! [`Recorder`] trait.
//!
//! The default recorder is [`NoopRecorder`]: every hook is an empty
//! default method on the trait, so an uninstrumented run and a run
//! through the no-op path execute the same arithmetic in the same order —
//! plans and evaluation counts are bit-identical (property-tested in
//! `uavdc-core`). The [`CollectingRecorder`] aggregates everything behind
//! one mutex and is `Sync`, so the `chunked_*_with` scoped workers of the
//! greedy engine can share it by reference.
//!
//! Time never enters the recorder implicitly: span durations come from a
//! [`Clock`] injected at construction. Production uses [`MonotonicClock`]
//! (a `std::time::Instant` anchor); replays and tests use [`ManualClock`]
//! so recorded timings are deterministic. Timings therefore *never* feed
//! back into planning decisions — the recorder is write-only from the
//! planner's point of view.
//!
//! A finished run renders to a [`RunReport`]: spans aggregated by path
//! (children sorted by name), counters and histograms sorted by name,
//! serialised by [`RunReport::to_json`] with a stable field order so the
//! bench artifacts diff cleanly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Monotonic time source injected into a [`CollectingRecorder`].
///
/// Implementations must be monotonic per instance; absolute epoch is
/// irrelevant because only span differences are reported.
pub trait Clock: Send + Sync {
    /// Nanoseconds elapsed since an arbitrary per-instance origin.
    fn now_ns(&self) -> u64;
}

/// Wall clock: nanoseconds since construction, via `std::time::Instant`.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // u64 nanoseconds cover ~584 years of run time.
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Deterministic clock for replays and tests: time moves only when the
/// caller advances it.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute reading.
    pub fn set(&self, ns: u64) {
        self.now.store(ns, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

/// Handle to an open span instance. `SpanId::NONE` is the identity of the
/// no-op path: it names no span and closing it does nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(u32);

impl SpanId {
    /// The null span: parent of root spans, result of no-op starts.
    pub const NONE: SpanId = SpanId(u32::MAX);

    /// True for [`SpanId::NONE`].
    pub fn is_none(self) -> bool {
        self == SpanId::NONE
    }
}

/// Instrumentation sink. All methods have empty defaults, so the no-op
/// implementation is `impl Recorder for NoopRecorder {}` and calls
/// through `&dyn Recorder` reduce to an indirect call that immediately
/// returns — nothing is computed, formatted, or locked.
pub trait Recorder: Sync {
    /// True when events are actually collected; lets callers skip
    /// building expensive observations (the built-in hooks never need
    /// this — they only pass values that already exist).
    fn is_enabled(&self) -> bool {
        false
    }

    /// Opens a span named `name` under `parent` (use [`SpanId::NONE`]
    /// for a root span). Returns the handle to close it with.
    fn span_start(&self, name: &'static str, parent: SpanId) -> SpanId {
        let _ = (name, parent);
        SpanId::NONE
    }

    /// Closes a span previously returned by
    /// [`span_start`](Recorder::span_start). Unknown or `NONE` ids are
    /// ignored.
    fn span_end(&self, id: SpanId) {
        let _ = id;
    }

    /// Adds `delta` to the named counter.
    fn add(&self, counter: &'static str, delta: u64) {
        let _ = (counter, delta);
    }

    /// Records one observation into the named log2-bucketed histogram.
    fn observe(&self, histogram: &'static str, value: u64) {
        let _ = (histogram, value);
    }
}

/// The zero-cost default recorder: records nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// A `&'static` no-op recorder, handy as a default argument.
pub static NOOP: NoopRecorder = NoopRecorder;

/// RAII guard that closes its span on drop. Hierarchy is explicit:
/// children are opened through [`Span::child`], never inferred from
/// thread-local state, so worker threads attribute spans correctly.
pub struct Span<'r> {
    rec: &'r dyn Recorder,
    id: SpanId,
}

impl<'r> Span<'r> {
    /// Opens a root span on `rec`.
    pub fn root(rec: &'r dyn Recorder, name: &'static str) -> Span<'r> {
        Span {
            rec,
            id: rec.span_start(name, SpanId::NONE),
        }
    }

    /// Opens a child span under this one.
    pub fn child(&self, name: &'static str) -> Span<'r> {
        Span {
            rec: self.rec,
            id: self.rec.span_start(name, self.id),
        }
    }

    /// The recorder this span reports to.
    pub fn recorder(&self) -> &'r dyn Recorder {
        self.rec
    }

    /// The underlying instance id (for handing to lower layers).
    pub fn id(&self) -> SpanId {
        self.id
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.rec.span_end(self.id);
    }
}

/// Number of histogram buckets: one zero bucket plus one per power of
/// two up to `2^63`.
pub const NUM_BUCKETS: usize = 65;

/// Bucket index of a value: bucket 0 holds exactly 0; bucket `i ≥ 1`
/// holds `[2^(i-1), 2^i - 1]`.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive `[lo, hi]` range of a bucket. Indices ≥ 64 saturate to the
/// top bucket `[2^63, u64::MAX]`.
pub fn bucket_range(index: usize) -> (u64, u64) {
    match index {
        0 => (0, 0),
        i if i >= 64 => (1u64 << 63, u64::MAX),
        i => (1u64 << (i - 1), (1u64 << i) - 1),
    }
}

/// A log2-bucketed histogram of `u64` observations.
#[derive(Clone, Debug)]
pub struct Histogram {
    count: u64,
    sum: u64,
    buckets: [u64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Per-bucket observation counts.
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.buckets
    }

    /// Deterministic `p`-quantile estimate (`p` a fraction in `[0, 1]`,
    /// clamped): the inclusive upper bound of the log2 bucket containing
    /// the `⌈p · count⌉`-th smallest observation, i.e. a value at least
    /// `p` of the observations do not exceed. Resolution is the bucket
    /// width (a factor of two), which is exactly the granularity the
    /// histogram stores — the estimate is a pure function of the bucket
    /// counts, so identical histograms always report identical
    /// percentiles. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        percentile_of(self.count, self.buckets.iter().copied().enumerate(), p)
    }
}

/// Shared percentile walk over `(bucket index, count)` pairs in index
/// order; see [`Histogram::percentile`] for the estimator contract.
fn percentile_of(count: u64, buckets: impl Iterator<Item = (usize, u64)>, p: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((p.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    let mut last_hi = 0u64;
    for (idx, n) in buckets {
        if n == 0 {
            continue;
        }
        seen += n;
        last_hi = bucket_range(idx).1;
        if seen >= rank {
            break;
        }
    }
    last_hi
}

/// One span node aggregated by path in a [`RunReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanStat {
    /// Slash-joined name path from the root, e.g. `"alg2/loop"`.
    pub path: String,
    /// How many span instances closed at this path.
    pub calls: u64,
    /// Total nanoseconds across those instances (per the injected clock).
    pub total_ns: u64,
}

/// One named counter in a [`RunReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterStat {
    /// Counter name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One histogram in a [`RunReport`]; only non-empty buckets are listed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramStat {
    /// Histogram name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// `(bucket index, observation count)` for non-empty buckets, in
    /// index order.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramStat {
    /// Same estimator as [`Histogram::percentile`], over the sparse
    /// bucket list a [`RunReport`] carries — the two always agree for the
    /// same recorded data.
    pub fn percentile(&self, p: f64) -> u64 {
        percentile_of(self.count, self.buckets.iter().copied(), p)
    }
}

/// Aggregated result of one instrumented run, in stable order: spans in
/// depth-first path order with children sorted by name, counters and
/// histograms sorted by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Aggregated spans.
    pub spans: Vec<SpanStat>,
    /// Counters.
    pub counters: Vec<CounterStat>,
    /// Histograms.
    pub histograms: Vec<HistogramStat>,
}

impl RunReport {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Value of a counter, zero when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Renders the report as a single-line JSON object with a stable
    /// field order (sorted names, integer-only values), suitable for
    /// embedding into bench artifacts and diffing across runs.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"path\":{},\"calls\":{},\"total_ns\":{}}}",
                json_string(&s.path),
                s.calls,
                s.total_ns
            ));
        }
        out.push_str("],\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"value\":{}}}",
                json_string(&c.name),
                c.value
            ));
        }
        out.push_str("],\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"count\":{},\"sum\":{},\"buckets\":[",
                json_string(&h.name),
                h.count,
                h.sum
            ));
            for (j, &(idx, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let (lo, hi) = bucket_range(idx);
                out.push_str(&format!(
                    "{{\"bucket\":{idx},\"lo\":{lo},\"hi\":{hi},\"count\":{n}}}"
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string as a JSON string literal. Names here are ASCII
/// identifiers, but escape defensively anyway.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A span-tree node: identity is (parent, name), so repeated instances
/// at the same path aggregate into one node.
#[derive(Debug)]
struct SpanNode {
    name: &'static str,
    children: BTreeMap<&'static str, usize>,
    calls: u64,
    total_ns: u64,
}

/// An open span instance.
#[derive(Clone, Copy, Debug)]
struct ActiveSpan {
    node: usize,
    start_ns: u64,
}

#[derive(Debug)]
struct Inner {
    /// `nodes[0]` is the synthetic root (never reported).
    nodes: Vec<SpanNode>,
    /// Slab of open instances; freed slots are recycled via `free`.
    active: Vec<Option<ActiveSpan>>,
    free: Vec<usize>,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// Thread-safe collecting recorder: one mutex guards the whole state, so
/// it can be shared by reference across the `chunked_*_with` scoped
/// workers. Span durations come from the injected [`Clock`].
pub struct CollectingRecorder {
    clock: Box<dyn Clock>,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for CollectingRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectingRecorder").finish_non_exhaustive()
    }
}

impl Default for CollectingRecorder {
    fn default() -> Self {
        CollectingRecorder::new()
    }
}

impl CollectingRecorder {
    /// A recorder timed by a fresh [`MonotonicClock`].
    pub fn new() -> Self {
        CollectingRecorder::with_clock(Box::new(MonotonicClock::new()))
    }

    /// A recorder timed by the given clock (inject a [`ManualClock`] for
    /// deterministic replays).
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        CollectingRecorder {
            clock,
            inner: Mutex::new(Inner {
                nodes: vec![SpanNode {
                    name: "",
                    children: BTreeMap::new(),
                    calls: 0,
                    total_ns: 0,
                }],
                active: Vec::new(),
                free: Vec::new(),
                counters: BTreeMap::new(),
                histograms: BTreeMap::new(),
            }),
        }
    }

    /// Locks the state, recovering from poisoning: a panicked worker
    /// leaves counters in a consistent (if partial) state, and the
    /// recorder must never turn an observation into a second panic.
    ///
    /// Reentrancy invariant (audited, enforced by uavdc-lint's
    /// `lock-across-spawn` rule): no caller may invoke another
    /// `locked()`-taking method while holding this guard — the Mutex is
    /// not reentrant, so a nested acquisition on the same thread
    /// deadlocks. Every caller (`report`, `span_start`, `span_end`,
    /// `add`, `observe`) only touches plain `Inner` data under the
    /// guard; clock reads happen *before* locking for the same reason.
    fn locked(&self) -> MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Snapshot of everything recorded so far, in stable order.
    pub fn report(&self) -> RunReport {
        let inner = self.locked();
        let mut spans = Vec::new();
        // Depth-first over the tree; BTreeMap children iterate sorted by
        // name, so the output order is independent of insertion order
        // (and therefore of worker-thread interleaving).
        let mut stack: Vec<(usize, String)> = inner.nodes[0]
            .children
            .values()
            .rev()
            .map(|&c| (c, String::new()))
            .collect();
        while let Some((idx, prefix)) = stack.pop() {
            let node = &inner.nodes[idx];
            let path = if prefix.is_empty() {
                node.name.to_string()
            } else {
                format!("{prefix}/{}", node.name)
            };
            for &c in node.children.values().rev() {
                stack.push((c, path.clone()));
            }
            spans.push(SpanStat {
                path,
                calls: node.calls,
                total_ns: node.total_ns,
            });
        }
        // Restore depth-first pre-order: the stack emits parents before
        // children already; nothing further to do.
        let counters = inner
            .counters
            .iter()
            .map(|(&name, &value)| CounterStat {
                name: name.to_string(),
                value,
            })
            .collect();
        let histograms = inner
            .histograms
            .iter()
            .map(|(&name, h)| HistogramStat {
                name: name.to_string(),
                count: h.count,
                sum: h.sum,
                buckets: h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|&(_, &n)| n > 0)
                    .map(|(i, &n)| (i, n))
                    .collect(),
            })
            .collect();
        RunReport {
            spans,
            counters,
            histograms,
        }
    }
}

impl Recorder for CollectingRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn span_start(&self, name: &'static str, parent: SpanId) -> SpanId {
        let start_ns = self.clock.now_ns();
        let mut inner = self.locked();
        let parent_node = if parent.is_none() {
            0
        } else {
            match inner.active.get(parent.0 as usize).copied().flatten() {
                Some(a) => a.node,
                // Unknown parent (already closed): attach to the root
                // rather than dropping the observation.
                None => 0,
            }
        };
        let node = match inner.nodes[parent_node].children.get(name) {
            Some(&idx) => idx,
            None => {
                let idx = inner.nodes.len();
                inner.nodes.push(SpanNode {
                    name,
                    children: BTreeMap::new(),
                    calls: 0,
                    total_ns: 0,
                });
                inner.nodes[parent_node].children.insert(name, idx);
                idx
            }
        };
        let slot = match inner.free.pop() {
            Some(s) => {
                inner.active[s] = Some(ActiveSpan { node, start_ns });
                s
            }
            None => {
                inner.active.push(Some(ActiveSpan { node, start_ns }));
                inner.active.len() - 1
            }
        };
        // Slab indices stay tiny (bounded by concurrently-open spans),
        // far below the u32::MAX sentinel.
        SpanId(slot as u32)
    }

    fn span_end(&self, id: SpanId) {
        if id.is_none() {
            return;
        }
        let end_ns = self.clock.now_ns();
        let mut inner = self.locked();
        let slot = id.0 as usize;
        if let Some(open) = inner.active.get_mut(slot).and_then(Option::take) {
            inner.free.push(slot);
            let node = &mut inner.nodes[open.node];
            node.calls += 1;
            node.total_ns += end_ns.saturating_sub(open.start_ns);
        }
    }

    fn add(&self, counter: &'static str, delta: u64) {
        let mut inner = self.locked();
        *inner.counters.entry(counter).or_insert(0) += delta;
    }

    fn observe(&self, histogram: &'static str, value: u64) {
        let mut inner = self.locked();
        inner.histograms.entry(histogram).or_default().record(value);
    }
}

/// Whether the `UAVDC_OBS` environment toggle asks for collection
/// (`1`/`true`/`on`, case-insensitive). Read once per process; binaries
/// use it to decide between [`NoopRecorder`] and [`CollectingRecorder`].
/// Library code never consults it — recorders are always passed in
/// explicitly, so the toggle cannot change planning behaviour.
pub fn env_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("UAVDC_OBS") {
        Ok(v) => matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "1" | "true" | "on" | "yes"
        ),
        Err(_) => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_records_nothing_and_returns_none() {
        let r = NoopRecorder;
        assert!(!r.is_enabled());
        let id = r.span_start("x", SpanId::NONE);
        assert!(id.is_none());
        r.span_end(id);
        r.add("c", 5);
        r.observe("h", 5);
    }

    #[test]
    fn counters_accumulate() {
        let r = CollectingRecorder::new();
        r.add("a", 2);
        r.add("a", 3);
        r.add("b", 1);
        let rep = r.report();
        assert_eq!(rep.counter("a"), 5);
        assert_eq!(rep.counter("b"), 1);
        assert_eq!(rep.counter("missing"), 0);
        assert_eq!(rep.counters.len(), 2);
    }

    #[test]
    fn spans_aggregate_by_path_with_manual_clock() {
        let clock = Box::new(ManualClock::new());
        // Keep a raw pointer-free handle by re-creating: drive through a
        // shared recorder holding the clock.
        let r = CollectingRecorder::with_clock(clock);
        // The recorder owns the clock; use zero-duration spans plus call
        // counts for determinism.
        {
            let root = Span::root(&r, "plan");
            {
                let _setup = root.child("setup");
            }
            {
                let _l = root.child("loop");
            }
            {
                let _l = root.child("loop");
            }
        }
        let rep = r.report();
        let paths: Vec<(&str, u64)> = rep
            .spans
            .iter()
            .map(|s| (s.path.as_str(), s.calls))
            .collect();
        assert_eq!(
            paths,
            vec![("plan", 1), ("plan/loop", 2), ("plan/setup", 1)]
        );
        // Manual clock never advanced: all durations are zero.
        assert!(rep.spans.iter().all(|s| s.total_ns == 0));
    }

    #[test]
    fn span_durations_follow_injected_clock() {
        struct SteppingClock(AtomicU64);
        impl Clock for SteppingClock {
            fn now_ns(&self) -> u64 {
                // Each reading advances time by 10 ns: start=10, end=20.
                self.0.fetch_add(10, Ordering::SeqCst) + 10
            }
        }
        let r = CollectingRecorder::with_clock(Box::new(SteppingClock(AtomicU64::new(0))));
        {
            let _s = Span::root(&r, "tick");
        }
        let rep = r.report();
        assert_eq!(rep.spans.len(), 1);
        assert_eq!(rep.spans[0].total_ns, 10);
        assert_eq!(rep.spans[0].calls, 1);
    }

    #[test]
    fn recorder_methods_never_nest_the_state_lock() {
        // Regression guard for the double-lock hazard class: every
        // `locked()`-taking method is exercised back-to-back and while
        // spans are still open. If any of them ever grows a nested call
        // into another `locked()`-taking method, the non-reentrant
        // Mutex deadlocks right here and the test hangs instead of
        // passing.
        let r = CollectingRecorder::new();
        let root = r.span_start("plan", SpanId::NONE);
        r.add("visited", 1);
        r.observe("tour_len", 42);
        let child = r.span_start("greedy", root);
        // Reporting with spans still active takes the same lock the
        // open spans' bookkeeping lives under.
        let mid = r.report();
        assert_eq!(mid.counter("visited"), 1);
        r.span_end(child);
        r.span_end(root);
        let rep = r.report();
        assert_eq!(rep.spans.len(), 2);
        assert_eq!(rep.counter("visited"), 1);
        assert_eq!(rep.histograms.len(), 1);
    }

    #[test]
    fn ending_unknown_or_none_span_is_ignored() {
        let r = CollectingRecorder::new();
        r.span_end(SpanId::NONE);
        r.span_end(SpanId(123));
        assert!(r.report().spans.is_empty());
    }

    #[test]
    fn report_is_stable_across_insertion_order() {
        let a = CollectingRecorder::with_clock(Box::new(ManualClock::new()));
        a.add("x", 1);
        a.add("y", 2);
        let b = CollectingRecorder::with_clock(Box::new(ManualClock::new()));
        b.add("y", 2);
        b.add("x", 1);
        assert_eq!(a.report(), b.report());
        assert_eq!(a.report().to_json(), b.report().to_json());
    }

    #[test]
    fn json_shape_is_stable() {
        let r = CollectingRecorder::with_clock(Box::new(ManualClock::new()));
        r.add("evals", 3);
        r.observe("pops", 0);
        r.observe("pops", 5);
        {
            let _s = Span::root(&r, "plan");
        }
        let json = r.report().to_json();
        let expected = concat!(
            "{\"spans\":[{\"path\":\"plan\",\"calls\":1,\"total_ns\":0}],",
            "\"counters\":[{\"name\":\"evals\",\"value\":3}],",
            "\"histograms\":[{\"name\":\"pops\",\"count\":2,\"sum\":5,\"buckets\":[",
            "{\"bucket\":0,\"lo\":0,\"hi\":0,\"count\":1},",
            "{\"bucket\":3,\"lo\":4,\"hi\":7,\"count\":1}]}]}"
        );
        assert_eq!(json, expected);
    }

    #[test]
    fn json_escapes_are_valid() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let r = CollectingRecorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        r.add("hits", 1);
                        r.observe("v", 7);
                    }
                });
            }
        });
        let rep = r.report();
        assert_eq!(rep.counter("hits"), 400);
        assert_eq!(rep.histograms[0].count, 400);
    }

    #[test]
    fn percentiles_walk_the_buckets() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0, "empty histogram reports 0");
        for v in [0u64, 1, 2, 3, 100, 1000, 100_000] {
            h.record(v);
        }
        // Ranks: p50 of 7 → 4th smallest (value 3, bucket [2,3]).
        assert_eq!(h.percentile(0.5), 3);
        // p99 of 7 → 7th smallest (100000, bucket [65536,131071]).
        assert_eq!(h.percentile(0.99), 131_071);
        // Extremes clamp to min/max bucket bounds.
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(1.0), 131_071);
        assert_eq!(h.percentile(7.0), 131_071, "out-of-range p clamps");
    }

    #[test]
    fn histogram_and_report_percentiles_agree() {
        let r = CollectingRecorder::with_clock(Box::new(ManualClock::new()));
        let mut h = Histogram::new();
        for v in [5u64, 9, 17, 17, 4096, 70_000] {
            r.observe("lat", v);
            h.record(v);
        }
        let rep = r.report();
        for p in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(rep.histograms[0].percentile(p), h.percentile(p), "p={p}");
        }
    }

    #[test]
    fn percentile_is_monotone_in_p() {
        let mut h = Histogram::new();
        for v in 0..200u64 {
            h.record(v * v % 5000);
        }
        let mut prev = 0;
        for i in 0..=100 {
            let q = h.percentile(i as f64 / 100.0);
            assert!(q >= prev, "p{i}: {q} < {prev}");
            prev = q;
        }
    }

    #[test]
    fn env_toggle_defaults_off() {
        // The variable is unset in the test environment; the cached
        // answer must be `false` (and never panic).
        let _ = env_enabled();
    }
}
