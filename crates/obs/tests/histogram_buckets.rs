//! Bucket-boundary behaviour of the log2 histogram: every power of two
//! opens a new bucket, `2^i - 1` stays in the previous one, and the
//! published ranges partition `u64` exactly.

use uavdc_obs::{bucket_index, bucket_range, Histogram, NUM_BUCKETS};

#[test]
fn zero_has_its_own_bucket() {
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_range(0), (0, 0));
}

#[test]
fn powers_of_two_open_new_buckets() {
    for i in 0..64u32 {
        let v = 1u64 << i;
        assert_eq!(
            bucket_index(v),
            i as usize + 1,
            "2^{i} lands in bucket {}",
            i + 1
        );
        if v > 1 {
            assert_eq!(
                bucket_index(v - 1),
                i as usize,
                "2^{i}-1 stays one bucket down"
            );
        }
    }
}

#[test]
fn bucket_ranges_partition_u64() {
    // Consecutive ranges tile the axis with no gap or overlap…
    let mut expected_lo = 0u64;
    for i in 0..NUM_BUCKETS {
        let (lo, hi) = bucket_range(i);
        assert_eq!(
            lo,
            expected_lo,
            "bucket {i} must start where {} ended",
            i.wrapping_sub(1)
        );
        assert!(hi >= lo);
        expected_lo = hi.wrapping_add(1);
    }
    // …ending exactly at u64::MAX (wrapped to 0).
    assert_eq!(expected_lo, 0, "last bucket must end at u64::MAX");
    assert_eq!(bucket_range(NUM_BUCKETS - 1).1, u64::MAX);
}

#[test]
fn index_and_range_agree_on_boundaries() {
    for &v in &[
        0u64,
        1,
        2,
        3,
        4,
        7,
        8,
        1023,
        1024,
        1025,
        (1 << 32) - 1,
        1 << 32,
        (1 << 63) - 1,
        1 << 63,
        u64::MAX,
    ] {
        let i = bucket_index(v);
        let (lo, hi) = bucket_range(i);
        assert!(
            lo <= v && v <= hi,
            "value {v} outside its bucket {i} [{lo}, {hi}]"
        );
    }
}

#[test]
fn oversized_indices_saturate_to_top_bucket() {
    assert_eq!(bucket_range(64), bucket_range(1000));
}

#[test]
fn histogram_counts_boundary_values() {
    let mut h = Histogram::new();
    for v in [0u64, 1, 1, 2, 3, 4, 8, u64::MAX] {
        h.record(v);
    }
    assert_eq!(h.count(), 8);
    // Sum saturates instead of wrapping.
    assert_eq!(h.sum(), u64::MAX);
    let b = h.buckets();
    assert_eq!(b[0], 1); // 0
    assert_eq!(b[1], 2); // 1, 1
    assert_eq!(b[2], 2); // 2, 3
    assert_eq!(b[3], 1); // 4
    assert_eq!(b[4], 1); // 8
    assert_eq!(b[64], 1); // u64::MAX
    assert_eq!(b.iter().sum::<u64>(), 8);
}
