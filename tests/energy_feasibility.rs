//! Property-based integration tests: across random scenario parameters,
//! every planner stays within budget and behaves monotonically where the
//! problem structure demands it.

use proptest::prelude::*;
use uavdc::prelude::*;

fn make_scenario(devices: usize, capacity: f64, seed: u64) -> Scenario {
    let params = ScenarioParams {
        num_devices: devices,
        region_side: 400.0,
        ..ScenarioParams::default()
    };
    let mut s = uniform(&params, seed);
    s.uav.capacity = Joules(capacity);
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_all_planners_respect_any_budget(
        devices in 5usize..40,
        capacity in 0.0f64..4.0e5,
        seed in 0u64..1000,
    ) {
        let scenario = make_scenario(devices, capacity, seed);
        let planners: Vec<Box<dyn Planner>> = vec![
            Box::new(Alg1Planner::default()),
            Box::new(Alg2Planner::default()),
            Box::new(Alg3Planner::with_k(2)),
            Box::new(BenchmarkPlanner),
        ];
        for planner in planners {
            let plan = planner.plan(&scenario);
            prop_assert!(plan.validate(&scenario).is_ok(),
                "{}: {:?}", planner.name(), plan.validate(&scenario));
            prop_assert!(plan.total_energy(&scenario).value() <= capacity + 1e-6,
                "{} over budget", planner.name());
        }
    }

    #[test]
    fn prop_alg2_volume_monotone_in_budget(
        devices in 10usize..30,
        seed in 0u64..200,
    ) {
        let low = make_scenario(devices, 1.0e5, seed);
        let high = make_scenario(devices, 3.0e5, seed);
        let v_low = Alg2Planner::default().plan(&low).collected_volume().value();
        let v_high = Alg2Planner::default().plan(&high).collected_volume().value();
        // Greedy is not perfectly monotone, but tripling the budget must
        // not lose data.
        prop_assert!(v_high >= v_low - 1e-6, "budget x3 lost data: {v_low} -> {v_high}");
    }

    #[test]
    fn prop_alg3_more_partitions_never_invalid(
        devices in 5usize..25,
        k in 1usize..6,
        seed in 0u64..200,
    ) {
        let scenario = make_scenario(devices, 2.0e5, seed);
        let plan = Alg3Planner::with_k(k).plan(&scenario);
        prop_assert!(plan.validate(&scenario).is_ok());
        // Every stop's sojourn is non-negative and every amount is
        // bandwidth-feasible (validate checks this, but assert the
        // aggregate too).
        let b = scenario.radio.bandwidth.value();
        for stop in &plan.stops {
            let per_stop: f64 = stop.collected.iter().map(|&(_, v)| v.value()).sum();
            let covered = scenario
                .devices
                .iter()
                .filter(|d| d.pos.distance(stop.pos) <= scenario.coverage_radius().value() + 1e-9)
                .count();
            prop_assert!(per_stop <= b * stop.sojourn.value() * covered as f64 + 1e-6);
        }
    }

    #[test]
    fn prop_simulation_energy_never_exceeds_capacity(
        devices in 5usize..30,
        capacity in 1.0e4f64..3.0e5,
        seed in 0u64..500,
    ) {
        let scenario = make_scenario(devices, capacity, seed);
        let plan = Alg2Planner::default().plan(&scenario);
        let outcome = simulate(&scenario, &plan, &SimConfig::default());
        prop_assert!(outcome.energy_used.value() <= capacity + 1e-6);
        prop_assert!(outcome.completed);
    }
}
