//! Integration checks of Algorithm 1's orienteering reduction: the
//! auxiliary graph's cycle weights must equal true tour energies, and the
//! resulting plan's energy must never exceed what the orienteering
//! solution budgeted (Eq. 9's half-edge folding).

use uavdc::core::{AuxGraph, CandidateSet};
use uavdc::orienteering::{solve, Backend};
use uavdc::prelude::*;

fn scenario(seed: u64) -> Scenario {
    let params = ScenarioParams::default().scaled(0.08); // 40 devices
    uniform(&params, seed)
}

#[test]
fn aux_graph_is_metric_for_real_instances() {
    let s = scenario(1);
    let cs = CandidateSet::build(&s, 25.0);
    let aux = AuxGraph::build(&s, &cs);
    // Lemma 1: Eq. 9 weights satisfy the triangle inequality.
    assert!(aux.instance.matrix().is_metric(1e-6));
}

#[test]
fn cycle_cost_equals_hover_plus_travel_energy() {
    let s = scenario(2);
    let cs = CandidateSet::build(&s, 30.0);
    let aux = AuxGraph::build(&s, &cs);
    let per_m = s.uav.travel_energy_per_meter().value();
    // Any closed tour through the depot: Eq. 9 cycle weight == energy.
    let tour: Vec<usize> = (0..aux.instance.len().min(6)).collect();
    let cost = aux.instance.tour_cost(&tour);
    let mut travel = 0.0;
    for k in 0..tour.len() {
        let a = aux.positions[tour[k]];
        let b = aux.positions[tour[(k + 1) % tour.len()]];
        travel += a.distance(b) * per_m;
    }
    let hover: f64 = tour.iter().map(|&v| aux.hover_energy[v].value()).sum();
    assert!(
        (cost - travel - hover).abs() < 1e-6 * (1.0 + cost),
        "cycle {cost} vs travel {travel} + hover {hover}"
    );
}

#[test]
fn orienteering_budget_bounds_plan_energy() {
    let s = scenario(3);
    let cs = CandidateSet::build(&s, 25.0).disjoint_by_volume(&s);
    let aux = AuxGraph::build(&s, &cs);
    let solution = solve(&aux.instance, Backend::Greedy);
    assert!(solution.cost <= s.uav.capacity.value() + 1e-6);
    // The realised plan of Algorithm 1 can only be cheaper than the
    // orienteering tour cost (same tour, same hovers).
    let plan = Alg1Planner::default().plan(&s);
    plan.validate(&s).unwrap();
    assert!(plan.total_energy(&s).value() <= s.uav.capacity.value() + 1e-6);
}

#[test]
fn disjoint_candidates_have_exclusive_coverage() {
    let s = scenario(4);
    let dj = CandidateSet::build(&s, 20.0).disjoint_by_volume(&s);
    let mut seen = std::collections::HashSet::new();
    for c in &dj.candidates {
        for &v in &c.covered {
            assert!(
                seen.insert(v),
                "device {v} covered by two disjoint candidates"
            );
        }
    }
    assert!(!dj.candidates.is_empty());
}

#[test]
fn exact_backend_dominates_greedy_on_small_instances() {
    let params = ScenarioParams::default().scaled(0.03); // 15 devices
    for seed in 0..3 {
        let s = uniform(&params, seed);
        let exact = Alg1Planner::new(Alg1Config {
            delta: 60.0,
            backend: Backend::Exact,
            ..Alg1Config::default()
        })
        .plan(&s);
        let greedy = Alg1Planner::new(Alg1Config {
            delta: 60.0,
            backend: Backend::Greedy,
            ..Alg1Config::default()
        })
        .plan(&s);
        assert!(
            exact.collected_volume().value() >= greedy.collected_volume().value() - 1e-6,
            "seed {seed}: exact < greedy"
        );
    }
}
