//! Cross-crate integration: every planner's plan must survive independent
//! physical validation and discrete-event simulation, on every scenario
//! family.

use uavdc::net::generator;
use uavdc::net::units::Meters;
use uavdc::prelude::*;

fn planners() -> Vec<Box<dyn Planner>> {
    vec![
        Box::new(Alg1Planner::default()),
        Box::new(Alg2Planner::default()),
        Box::new(Alg3Planner::with_k(2)),
        Box::new(Alg3Planner::with_k(4)),
        Box::new(BenchmarkPlanner),
    ]
}

fn scenarios() -> Vec<(&'static str, Scenario)> {
    let params = ScenarioParams::default().scaled(0.12); // 60 devices
    vec![
        ("uniform", generator::uniform(&params, 11)),
        ("clustered", generator::clustered(&params, 4, 30.0, 12)),
        (
            "two_tier",
            generator::two_tier(&params, 200, Meters(60.0), 13),
        ),
    ]
}

#[test]
fn every_planner_validates_on_every_scenario_family() {
    for (family, scenario) in scenarios() {
        for planner in planners() {
            let plan = planner.plan(&scenario);
            plan.validate(&scenario)
                .unwrap_or_else(|e| panic!("{} on {family}: {e}", planner.name()));
            assert!(
                plan.total_energy(&scenario) <= scenario.uav.capacity,
                "{} on {family}: over budget",
                planner.name()
            );
        }
    }
}

#[test]
fn simulation_confirms_every_plan_end_to_end() {
    for (family, scenario) in scenarios() {
        for planner in planners() {
            let plan = planner.plan(&scenario);
            let outcome = simulate(&scenario, &plan, &SimConfig::default());
            assert!(
                outcome.completed,
                "{} on {family}: mission aborted",
                planner.name()
            );
            assert!(
                outcome.agrees_with_plan(&plan, &scenario),
                "{} on {family}: sim {} GB vs plan {} GB",
                planner.name(),
                megabytes_as_gb(outcome.collected),
                megabytes_as_gb(plan.collected_volume()),
            );
        }
    }
}

#[test]
fn opportunistic_policy_never_collects_less() {
    for (family, scenario) in scenarios() {
        for planner in planners() {
            let plan = planner.plan(&scenario);
            let strict = simulate(&scenario, &plan, &SimConfig::default());
            let opp = simulate(
                &scenario,
                &plan,
                &SimConfig {
                    policy: CollectionPolicy::Opportunistic,
                    ..SimConfig::default()
                },
            );
            assert!(
                opp.collected.value() >= strict.collected.value() - 1e-6,
                "{} on {family}: opportunistic {} < strict {}",
                planner.name(),
                opp.collected,
                strict.collected,
            );
        }
    }
}

#[test]
fn collected_never_exceeds_stored_total() {
    for (family, scenario) in scenarios() {
        let total = scenario.total_data();
        for planner in planners() {
            let plan = planner.plan(&scenario);
            assert!(
                plan.collected_volume().value() <= total.value() + 1e-6,
                "{} on {family}: collected more than stored",
                planner.name()
            );
        }
    }
}
