//! Cross-crate integration tests for the extension layers: fleets (all
//! three strategies), plan polishing, the sweep baseline, periodic
//! campaigns, scenario persistence, and noisy simulation.

use uavdc::core::{JointFleetPlanner, SweepPlanner, TeamAlg1Planner};
use uavdc::net::io::{read_scenario, write_scenario};
use uavdc::prelude::*;
use uavdc::sim::{run_periodic, LinkModel, PeriodicConfig};

fn scenario(seed: u64) -> Scenario {
    uniform(&ScenarioParams::default().scaled(0.1), seed)
}

#[test]
fn all_fleet_strategies_validate_and_simulate() {
    let s = scenario(31);
    let fleets = vec![
        (
            "sectors",
            MultiUavPlanner::new(Alg2Planner::default(), FleetConfig::new(3)).plan_fleet(&s),
        ),
        (
            "kmeans",
            MultiUavPlanner::new(
                Alg2Planner::default(),
                FleetConfig {
                    fleet_size: 3,
                    partition: FleetPartition::KMeans,
                },
            )
            .plan_fleet(&s),
        ),
        ("joint", JointFleetPlanner::new(3).plan_fleet(&s)),
        ("team-alg1", TeamAlg1Planner::new(3).plan_fleet(&s)),
    ];
    for (name, fleet) in fleets {
        fleet.validate(&s).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(fleet.plans.len(), 3, "{name}");
        // Every UAV's tour flies successfully in the simulator.
        for (u, plan) in fleet.plans.iter().enumerate() {
            let outcome = simulate(&s, plan, &SimConfig::default());
            assert!(outcome.completed, "{name} UAV {u} aborted");
            assert!(
                outcome.agrees_with_plan(plan, &s),
                "{name} UAV {u} accounting mismatch"
            );
        }
    }
}

#[test]
fn polishing_any_planner_preserves_collection_and_feasibility() {
    let s = scenario(32);
    for planner in [
        Box::new(Alg2Planner::default()) as Box<dyn Planner>,
        Box::new(Alg3Planner::with_k(3)),
        Box::new(BenchmarkPlanner),
        Box::new(SweepPlanner),
    ] {
        let mut plan = planner.plan(&s);
        let before_volume = plan.collected_volume();
        let before_energy = plan.total_energy(&s);
        let saved = uavdc::core::polish_plan(&mut plan, &s);
        plan.validate(&s)
            .unwrap_or_else(|e| panic!("{}: {e}", planner.name()));
        // Stop reordering changes float summation order; compare within
        // tolerance.
        assert!(
            (plan.collected_volume().value() - before_volume.value()).abs() < 1e-6,
            "{}: volume changed",
            planner.name()
        );
        assert!(
            (before_energy.value() - plan.total_energy(&s).value() - saved.value()).abs() < 1e-6,
            "{}: energy accounting",
            planner.name()
        );
    }
}

#[test]
fn sweep_baseline_loses_to_every_paper_algorithm_when_constrained() {
    let mut s = scenario(33);
    s.uav.capacity = Joules(1.2e5);
    let sweep = SweepPlanner.plan(&s).collected_volume().value();
    for planner in [
        Box::new(Alg1Planner::default()) as Box<dyn Planner>,
        Box::new(Alg2Planner::default()),
        Box::new(Alg3Planner::with_k(2)),
    ] {
        let v = planner.plan(&s).collected_volume().value();
        assert!(
            v >= sweep * 0.95,
            "{} ({v}) should not lose to blind sweep ({sweep})",
            planner.name()
        );
    }
}

#[test]
fn scenario_roundtrip_preserves_planning_results() {
    let s = scenario(34);
    let dir = std::env::temp_dir().join("uavdc_ext_io");
    let path = dir.join("s.txt");
    write_scenario(&path, &s).unwrap();
    let back = read_scenario(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    // Planning the round-tripped scenario gives bit-identical results.
    let a = Alg2Planner::default().plan(&s);
    let b = Alg2Planner::default().plan(&back);
    assert_eq!(a, b, "round-tripped scenario planned differently");
}

#[test]
fn periodic_campaign_with_real_planner_conserves_and_stabilises() {
    let s = scenario(35);
    let rates = vec![MegaBytesPerSecond(0.05); s.num_devices()];
    let cfg = PeriodicConfig {
        rounds: 5,
        period: Seconds(1200.0),
        generation_rates: rates,
        buffer_capacity: Some(MegaBytes(2000.0)),
        sim: SimConfig {
            record_uploads: false,
            ..SimConfig::default()
        },
    };
    let out = run_periodic(&s, &Alg2Planner::default(), &cfg);
    assert!(out.conserves_data());
    assert_eq!(out.rounds.len(), 5);
}

#[test]
fn noisy_simulation_is_never_better_than_nominal() {
    let s = scenario(36);
    let plan = Alg2Planner::default().plan(&s);
    let nominal = simulate(&s, &plan, &SimConfig::default());
    for seed in 0..5 {
        let noisy = simulate(
            &s,
            &plan,
            &SimConfig {
                wind: WindModel::uniform(1.0, 1.3, seed),
                link: LinkModel::uniform(0.6, 1.0, seed),
                record_uploads: false,
                ..SimConfig::default()
            },
        );
        // Wind can abort (collecting 0); link noise can truncate uploads;
        // neither can create data from nowhere.
        assert!(noisy.collected.value() <= nominal.collected.value() + 1e-6);
        assert!(noisy.energy_used.value() <= s.uav.capacity.value() + 1e-6);
    }
}

#[test]
fn svg_rendering_works_for_every_planner() {
    let s = scenario(37);
    for planner in [
        Box::new(Alg2Planner::default()) as Box<dyn Planner>,
        Box::new(SweepPlanner),
        Box::new(BenchmarkPlanner),
    ] {
        let plan = planner.plan(&s);
        let svg = uavdc::viz::render_plan_svg(&s, &plan);
        assert!(svg.starts_with("<svg"), "{}", planner.name());
        assert!(svg.contains("<polyline"), "{}", planner.name());
    }
}
