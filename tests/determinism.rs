//! Reproducibility: everything in the pipeline is seeded, so identical
//! inputs must give bitwise-identical outputs across runs.

use uavdc::prelude::*;

fn plan_volume(planner: &dyn Planner, seed: u64) -> (usize, f64, f64) {
    let params = ScenarioParams::default().scaled(0.1);
    let scenario = uniform(&params, seed);
    let plan = planner.plan(&scenario);
    (
        plan.stops.len(),
        plan.collected_volume().value(),
        plan.total_energy(&scenario).value(),
    )
}

#[test]
fn planners_are_deterministic_per_seed() {
    let planners: Vec<Box<dyn Planner>> = vec![
        Box::new(Alg1Planner::default()),
        Box::new(Alg2Planner::default()),
        Box::new(Alg3Planner::with_k(3)),
        Box::new(BenchmarkPlanner),
    ];
    for planner in &planners {
        let a = plan_volume(planner.as_ref(), 5);
        let b = plan_volume(planner.as_ref(), 5);
        assert_eq!(a, b, "{} not deterministic", planner.name());
    }
}

#[test]
fn different_seeds_give_different_instances() {
    let a = plan_volume(&Alg2Planner::default(), 1);
    let b = plan_volume(&Alg2Planner::default(), 2);
    assert_ne!(a, b, "different seeds should not coincide exactly");
}

#[test]
fn parallel_candidate_evaluation_is_deterministic() {
    // Alg2/Alg3 evaluate candidates on threads; the tie-breaking reduce
    // must make the result independent of scheduling.
    let params = ScenarioParams::default().scaled(0.1);
    let scenario = uniform(&params, 9);
    let serial = Alg2Planner::new(Alg2Config {
        parallel_threshold: usize::MAX,
        ..Alg2Config::default()
    })
    .plan(&scenario);
    for _ in 0..3 {
        let parallel = Alg2Planner::new(Alg2Config {
            parallel_threshold: 1,
            ..Alg2Config::default()
        })
        .plan(&scenario);
        assert_eq!(serial, parallel, "thread scheduling leaked into the result");
    }
}

#[test]
fn simulation_is_deterministic_including_wind() {
    let params = ScenarioParams::default().scaled(0.1);
    let scenario = uniform(&params, 3);
    let plan = Alg2Planner::default().plan(&scenario);
    let cfg = SimConfig {
        wind: WindModel::uniform(1.0, 1.4, 77),
        ..SimConfig::default()
    };
    let a = simulate(&scenario, &plan, &cfg);
    let b = simulate(&scenario, &plan, &cfg);
    assert_eq!(a.collected.value(), b.collected.value());
    assert_eq!(a.energy_used.value(), b.energy_used.value());
    assert_eq!(a.trace.len(), b.trace.len());
}
